// Command benchcheck gates CI on benchmark regressions: it reads `go
// test -bench` output on stdin, looks each requested benchmark up in
// the BENCH_trial.json history, and fails when a measured metric
// exceeds the recorded baseline by more than the allowed ratio.
//
// Usage:
//
//	go test -bench ReplicateSteadyState -benchtime 20x -run '^$' . |
//	    benchcheck -baseline BENCH_trial.json \
//	        -check 'ReplicateSteadyState/pooled-64x64:bytes_op:1.5' \
//	        -check 'ReplicateSteadyState/pooled-64x64:allocs_op:1.5'
//
// Each -check is NAME:METRIC:MAXRATIO, where NAME is the benchmark name
// without the "Benchmark" prefix (matching the keys of the baseline's
// "benchmarks" object), METRIC is ns_op, bytes_op, or allocs_op, and
// MAXRATIO bounds measured/baseline. Allocation metrics are stable
// across machines, which is what makes them CI-gateable; ns_op gates
// should use generous ratios if used at all. The baseline for a name is
// the most recent history entry that records it.
//
// -trend NAME:METRIC (repeatable) prints the same measured-vs-baseline
// comparison as a report-only row — never a failure, and a missing
// baseline or measurement is tolerated. It exists for wall-clock
// metrics: ns_op on shared CI boxes is too noisy to gate, but the trend
// line in the log makes a 10x cliff visible the day it happens.
//
// -soft NAME:METRIC:MAXRATIO (repeatable) sits between the two: the
// ratio is checked like -check and a breach prints a loud SOFT-WARN
// row, but the exit status stays zero. It is the right shape for ns_op
// budgets — a 1.3x warn threshold surfaces real slowdowns in the log
// without letting a noisy shared box fail the build; missing baselines
// or measurements are tolerated like -trend.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type checkSpec struct {
	name     string
	metric   string
	maxRatio float64
}

type checkList []checkSpec

func (c *checkList) String() string { return fmt.Sprintf("%v", []checkSpec(*c)) }

func (c *checkList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad check %q (want NAME:METRIC:MAXRATIO)", s)
	}
	if err := validMetric(parts[1]); err != nil {
		return err
	}
	ratio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || ratio <= 0 {
		return fmt.Errorf("bad ratio %q", parts[2])
	}
	*c = append(*c, checkSpec{name: parts[0], metric: parts[1], maxRatio: ratio})
	return nil
}

func validMetric(m string) error {
	switch m {
	case "ns_op", "bytes_op", "allocs_op":
		return nil
	}
	return fmt.Errorf("bad metric %q (want ns_op, bytes_op, or allocs_op)", m)
}

// trendList collects -trend NAME:METRIC report-only comparisons.
type trendList []checkSpec

func (c *trendList) String() string { return fmt.Sprintf("%v", []checkSpec(*c)) }

func (c *trendList) Set(s string) error {
	name, metric, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return fmt.Errorf("bad trend %q (want NAME:METRIC)", s)
	}
	if err := validMetric(metric); err != nil {
		return err
	}
	*c = append(*c, checkSpec{name: name, metric: metric})
	return nil
}

// baselineFile mirrors the slice of BENCH_trial.json benchcheck needs.
type baselineFile struct {
	History []struct {
		PR         int                           `json:"pr"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"history"`
}

// baselineFor returns the named benchmark's metrics from the most
// recent history entry recording it (entries are ordered newest first).
func (b baselineFile) baselineFor(name string) (map[string]float64, bool) {
	for _, entry := range b.History {
		if m, ok := entry.Benchmarks[name]; ok {
			return m, true
		}
	}
	return nil, false
}

// benchLine matches one `go test -bench` result line; the trailing
// -<GOMAXPROCS> suffix of the name is stripped.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts {name -> {metric -> value}} from bench output.
func parseBench(lines *bufio.Scanner) (map[string]map[string]float64, error) {
	metricName := map[string]string{"ns/op": "ns_op", "B/op": "bytes_op", "allocs/op": "allocs_op"}
	out := make(map[string]map[string]float64)
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(lines.Text())
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		vals := make(map[string]float64)
		for i := 0; i+1 < len(fields); i += 2 {
			key, ok := metricName[fields[i+1]]
			if !ok {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench line %q: %w", lines.Text(), err)
			}
			vals[key] = v
		}
		out[m[1]] = vals
	}
	return out, lines.Err()
}

func run() error {
	var checks, softs checkList
	var trends trendList
	baselinePath := flag.String("baseline", "BENCH_trial.json", "benchmark history file")
	flag.Var(&checks, "check", "NAME:METRIC:MAXRATIO assertion (repeatable)")
	flag.Var(&softs, "soft", "NAME:METRIC:MAXRATIO report-only warning, never a failure (repeatable)")
	flag.Var(&trends, "trend", "NAME:METRIC report-only comparison, never a failure (repeatable)")
	flag.Parse()
	if len(checks) == 0 && len(softs) == 0 && len(trends) == 0 {
		return fmt.Errorf("no -check assertions, -soft warnings, or -trend reports given")
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var baseline baselineFile
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	measured, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	failed := 0
	for _, c := range checks {
		base, ok := baseline.baselineFor(c.name)
		if !ok {
			return fmt.Errorf("benchmark %q not in %s", c.name, *baselinePath)
		}
		baseVal, ok := base[c.metric]
		if !ok || baseVal <= 0 {
			return fmt.Errorf("benchmark %q has no positive baseline %s", c.name, c.metric)
		}
		got, ok := measured[c.name]
		if !ok {
			return fmt.Errorf("benchmark %q not in the piped bench output", c.name)
		}
		gotVal, ok := got[c.metric]
		if !ok {
			return fmt.Errorf("benchmark %q output lacks %s (missing -benchmem / ReportAllocs?)", c.name, c.metric)
		}
		ratio := gotVal / baseVal
		status := "ok"
		if ratio > c.maxRatio {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-50s %-10s %12.0f vs baseline %12.0f  (%.2fx, limit %.2fx) %s\n",
			c.name, c.metric, gotVal, baseVal, ratio, c.maxRatio, status)
	}
	// Soft gates warn loudly past their ratio but never fail the run;
	// missing baselines or measurements are tolerated like trends.
	for _, c := range softs {
		gotVal, haveGot := measured[c.name][c.metric]
		base, _ := baseline.baselineFor(c.name)
		baseVal, haveBase := base[c.metric]
		switch {
		case !haveGot:
			fmt.Printf("%-50s %-10s not in the piped bench output (soft)\n", c.name, c.metric)
		case !haveBase || baseVal <= 0:
			fmt.Printf("%-50s %-10s %12.0f — no baseline (soft)\n", c.name, c.metric, gotVal)
		default:
			ratio := gotVal / baseVal
			status := "ok (soft)"
			if ratio > c.maxRatio {
				status = "SOFT-WARN"
			}
			fmt.Printf("%-50s %-10s %12.0f vs baseline %12.0f  (%.2fx, warn %.2fx) %s\n",
				c.name, c.metric, gotVal, baseVal, ratio, c.maxRatio, status)
		}
	}
	// Trend rows report, never gate: a missing baseline or measurement
	// prints as such instead of failing the run.
	for _, c := range trends {
		gotVal, haveGot := measured[c.name][c.metric]
		base, _ := baseline.baselineFor(c.name)
		baseVal, haveBase := base[c.metric]
		switch {
		case !haveGot:
			fmt.Printf("%-50s %-10s not in the piped bench output (trend)\n", c.name, c.metric)
		case !haveBase || baseVal <= 0:
			fmt.Printf("%-50s %-10s %12.0f — no baseline (trend)\n", c.name, c.metric, gotVal)
		default:
			fmt.Printf("%-50s %-10s %12.0f vs baseline %12.0f  (%.2fx) trend\n",
				c.name, c.metric, gotVal, baseVal, gotVal/baseVal)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond threshold", failed)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
