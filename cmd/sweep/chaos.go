package main

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Chaos harness: WSNSWEEP_CHAOS injects worker faults so the dispatch
// driver's fault tolerance is testable end to end — every mode must
// converge to a merged manifest equivalent to the unsharded run's
// (the chaos matrix in chaos_test.go pins that).
//
//	WSNSWEEP_CHAOS          comma-separated fault modes:
//	                          hang             stop heartbeating (lease expiry path)
//	                          crash            exit non-zero mid-run (retry path)
//	                          slow             sleep per trial (steal path)
//	                          corrupt-progress emit a malformed progress line
//	                          partial-manifest exit 0 with only a checkpoint on disk
//	WSNSWEEP_CHAOS_DIR      claim directory: each mode fires in exactly one
//	                        process across the whole fleet (O_EXCL claim
//	                        files), so retries and siblings run clean.
//	                        Empty means every mode fires in this process.
//	WSNSWEEP_CHAOS_AFTER    completed trials before a fault fires (default 2)
//	WSNSWEEP_CHAOS_SLOW_MS  slow mode's per-trial sleep (default 150)
//
// Faults fire from the trial sink, after the checkpoint for the
// completed cell is written — exactly where a real worker loss hurts:
// state on disk is a valid prefix, in-memory progress is gone.
type chaosInjector struct {
	modes  map[string]bool
	dir    string
	after  int
	slowMS int
	log    *slog.Logger
}

// chaosModes is the closed set of valid fault modes.
var chaosModes = map[string]bool{
	"hang": true, "crash": true, "slow": true,
	"corrupt-progress": true, "partial-manifest": true,
}

// chaosFromEnv builds the injector from the environment; nil when
// WSNSWEEP_CHAOS is unset. Unknown modes fail loudly — a typo that
// silently disables a fault would green a chaos test that tested
// nothing.
func chaosFromEnv(logger *slog.Logger) *chaosInjector {
	raw := os.Getenv("WSNSWEEP_CHAOS")
	if raw == "" {
		return nil
	}
	c := &chaosInjector{
		modes:  make(map[string]bool),
		dir:    os.Getenv("WSNSWEEP_CHAOS_DIR"),
		after:  2,
		slowMS: 150,
		log:    logger,
	}
	for _, m := range strings.Split(raw, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !chaosModes[m] {
			fmt.Fprintf(os.Stderr, "sweep: unknown WSNSWEEP_CHAOS mode %q\n", m)
			os.Exit(2)
		}
		c.modes[m] = true
	}
	if s := os.Getenv("WSNSWEEP_CHAOS_AFTER"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			c.after = n
		}
	}
	if s := os.Getenv("WSNSWEEP_CHAOS_SLOW_MS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			c.slowMS = n
		}
	}
	// Slow mode claims at startup: it shapes the whole process's pace,
	// not a single moment.
	if c.modes["slow"] && !c.claim("slow") {
		delete(c.modes, "slow")
	}
	return c
}

// claim reports whether this process gets to fire the mode. With a
// claim directory the first process across the fleet to create the
// mode's claim file (O_EXCL) wins and everyone else — including this
// worker's own retry — runs clean; without one the mode always fires.
func (c *chaosInjector) claim(mode string) bool {
	if c.dir == "" {
		return true
	}
	f, err := os.OpenFile(filepath.Join(c.dir, "chaos-"+mode), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// trialDone fires pending faults; called from the campaign sink after
// each completed trial (checkpoint already flushed).
func (c *chaosInjector) trialDone(ran int) {
	if c.modes["slow"] {
		time.Sleep(time.Duration(c.slowMS) * time.Millisecond)
	}
	if ran != c.after {
		return
	}
	if c.modes["corrupt-progress"] && c.claim("corrupt-progress") {
		// A truncated JSON event, as if the worker died mid-write: the
		// driver must log-and-skip it without crediting the heartbeat.
		c.log.Warn("chaos: emitting corrupt progress line")
		progressOut.Write([]byte(`{"done":` + strconv.Itoa(ran) + `,"tot`))
		progressOut.Write([]byte("\n"))
	}
	if c.modes["partial-manifest"] && c.claim("partial-manifest") {
		// Exit 0 with only the checkpoint on disk: a worker that lies
		// about being done. The driver's manifest validation must catch
		// the short job count and requeue.
		c.log.Warn("chaos: clean exit with partial manifest", "trials", ran)
		os.Exit(0)
	}
	if c.modes["crash"] && c.claim("crash") {
		c.log.Warn("chaos: crashing", "trials", ran)
		os.Exit(7)
	}
	if c.modes["hang"] && c.claim("hang") {
		c.log.Warn("chaos: hanging (no further heartbeats)", "trials", ran)
		// Block the sink forever; the lease watchdog must kill us.
		select {}
	}
}
