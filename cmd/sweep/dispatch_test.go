package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"wsncover/internal/dispatch"
	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

// TestMain doubles as the dispatch worker entry point: the dispatch
// driver re-executes the current binary, which under `go test` is the
// test binary. With WSNSWEEP_WORKER=1 set, this process behaves exactly
// like cmd/sweep, so the dispatch tests exercise the real worker code
// path without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("WSNSWEEP_WORKER") == "1" {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// captureProgress redirects the -progress=json stream for one test.
func captureProgress(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := progressOut
	progressOut = &buf
	t.Cleanup(func() { progressOut = old })
	return &buf
}

// parseEvents decodes every protocol line in the captured stream.
func parseEvents(t *testing.T, raw []byte) []experiment.Progress {
	t.Helper()
	var events []experiment.Progress
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if ev, ok := experiment.ParseProgressLine(line); ok {
			events = append(events, ev)
		}
	}
	return events
}

// TestShardProgressJSONTotals is the shard-meter regression test: under
// -shard i/n every progress total — the denominator the meter and any
// supervisor computes ETA from — must be the shard's own trial count,
// never the full campaign's replicate range.
func TestShardProgressJSONTotals(t *testing.T) {
	buf := captureProgress(t)
	dir := t.TempDir()
	// Full campaign: 1 scheme x 2 spares x 4 replicates = 8 trials.
	// Shard 2/2 owns replicates [2, 4): 4 trials.
	err := run([]string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "4", "-seed", "5", "-shard", "2/2",
		"-progress", "json", "-out", dir, "-name", "s", "-metrics", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	events := parseEvents(t, buf.Bytes())
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least the initial and final ones:\n%s", len(events), buf.String())
	}
	if first := events[0]; first.Done != 0 || first.Total != 4 {
		t.Errorf("initial event %+v, want 0/4 (the shard's own count)", first)
	}
	last := events[len(events)-1]
	if last.Done != 4 || last.Total != 4 {
		t.Errorf("final event %+v, want 4/4", last)
	}
	for _, ev := range events {
		if ev.Total == 8 {
			t.Errorf("event %+v leaked the full campaign total 8", ev)
		}
	}
}

// TestShardResumeJobsAccounting pins the Jobs bookkeeping fix: a shard
// manifest grown by -resume must count the trials its points represent
// (prior retained cells included), exactly like the same shard run in
// one go — otherwise -merge under-reports the campaign's job count.
func TestShardResumeJobsAccounting(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR", "-grids", "8x8", "-replicates", "4",
		"-seed", "5", "-shard", "2/2", "-out", dir, "-name", "sh",
		"-metrics", "", "-quiet",
	}
	if err := run(append([]string{"-spares", "8"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-spares", "8,24", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(filepath.Join(dir, "sh.json"))
	if err != nil {
		t.Fatal(err)
	}

	refDir := t.TempDir()
	ref := []string{
		"-schemes", "SR", "-grids", "8x8", "-replicates", "4",
		"-seed", "5", "-shard", "2/2", "-out", refDir, "-name", "sh",
		"-metrics", "", "-quiet", "-spares", "8,24",
	}
	if err := run(ref); err != nil {
		t.Fatal(err)
	}
	direct, err := os.ReadFile(filepath.Join(refDir, "sh.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, direct) {
		t.Errorf("resumed shard manifest differs from the direct run:\n%s\nvs\n%s", resumed, direct)
	}
	var m experiment.Manifest
	if err := json.Unmarshal(resumed, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 4 {
		t.Errorf("resumed shard manifest jobs = %d, want 4 (2 prior + 2 new)", m.Jobs)
	}
}

// TestCheckpointResumeAfterKill is the worker failure-path satellite: a
// shard worker killed mid-run leaves a checkpoint manifest of its
// completed cells, a -resume rerun finishes only the missing cells, and
// the final manifest is byte-identical to an uninterrupted run.
func TestCheckpointResumeAfterKill(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "9", "-out", dir, "-name", "ck",
		"-metrics", "", "-checkpoint", "-quiet",
	}
	// Re-exec this test binary as a worker that dies (exit 7) right
	// after its third trial — the moment the first cell completes and
	// checkpoints.
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WSNSWEEP_WORKER=1", "WSNSWEEP_EXIT_AFTER=3")
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 7 {
		t.Fatalf("worker = %v (output %q), want exit code 7", err, out)
	}

	// The partial manifest holds exactly the completed cell.
	partial, err := os.ReadFile(filepath.Join(dir, "ck.json"))
	if err != nil {
		t.Fatalf("no checkpoint manifest after the kill: %v", err)
	}
	var pm experiment.Manifest
	if err := json.Unmarshal(partial, &pm); err != nil {
		t.Fatal(err)
	}
	if len(pm.Points) != 1 || pm.Points[0].X != 8 || pm.Jobs != 3 {
		t.Fatalf("checkpoint = %d points (X=%g) %d jobs, want the completed N=8 cell and 3 jobs",
			len(pm.Points), pm.Points[0].X, pm.Jobs)
	}

	// Resume in-process and compare with an uninterrupted run.
	if err := run(append(append([]string{}, args...), "-resume")); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(filepath.Join(dir, "ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	refArgs := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "9", "-out", refDir, "-name", "ck",
		"-metrics", "", "-quiet",
	}
	if err := run(refArgs); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, "ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Errorf("resumed-after-kill manifest differs from uninterrupted run:\n%s\nvs\n%s", resumed, ref)
	}
}

// assertManifestsEquivalent compares a sharded-and-merged campaign
// manifest against an unsharded reference under the merge contract:
// count/min/max and every structural field byte-exact, mean/stddev/CI95
// to within floating-point reassociation (the pooled-variance merge
// reassociates sums), the median excluded (it is an estimate marked
// median_approx), and execution metadata (worker counts) ignored.
func assertManifestsEquivalent(t *testing.T, gotPath, wantPath string) {
	t.Helper()
	load := func(path string) (experiment.Manifest, sim.CampaignSpec) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m experiment.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		var spec sim.CampaignSpec
		if err := json.Unmarshal(m.Spec, &spec); err != nil {
			t.Fatal(err)
		}
		spec.Workers, spec.FreshBuild = 0, false
		return m, spec
	}
	got, gotSpec := load(gotPath)
	want, wantSpec := load(wantPath)
	gs, _ := json.Marshal(gotSpec)
	ws, _ := json.Marshal(wantSpec)
	if !bytes.Equal(gs, ws) {
		t.Errorf("specs differ:\n%s\nvs\n%s", gs, ws)
	}
	if got.Jobs != want.Jobs || got.Name != want.Name || len(got.Points) != len(want.Points) {
		t.Fatalf("manifest shape (%s, %d jobs, %d points) vs (%s, %d jobs, %d points)",
			got.Name, got.Jobs, len(got.Points), want.Name, want.Jobs, len(want.Points))
	}
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	for i, wp := range want.Points {
		gp := got.Points[i]
		if gp.Group != wp.Group || gp.X != wp.X || len(gp.Metrics) != len(wp.Metrics) {
			t.Fatalf("point %d: (%s, %g, %d metrics) vs (%s, %g, %d metrics)",
				i, gp.Group, gp.X, len(gp.Metrics), wp.Group, wp.X, len(wp.Metrics))
		}
		for name, wd := range wp.Metrics {
			gd := gp.Metrics[name]
			if gd.N != wd.N || gd.Min != wd.Min || gd.Max != wd.Max {
				t.Errorf("%s/%s exact fields: (%d,%g,%g) vs (%d,%g,%g)",
					wp.Group, name, gd.N, gd.Min, gd.Max, wd.N, wd.Min, wd.Max)
			}
			if !close(gd.Mean, wd.Mean) || !close(gd.StdDev, wd.StdDev) || !close(gd.CI95, wd.CI95) {
				t.Errorf("%s/%s moments: (%g,%g,%g) vs (%g,%g,%g)",
					wp.Group, name, gd.Mean, gd.StdDev, gd.CI95, wd.Mean, wd.StdDev, wd.CI95)
			}
		}
	}
}

// TestDispatchMatchesUnsharded is the acceptance criterion: -dispatch n
// runs n supervised shard subprocesses and writes a final merged
// manifest byte-identical — modulo the now-honest median field and
// worker-count metadata — to the same campaign run unsharded.
func TestDispatchMatchesUnsharded(t *testing.T) {
	t.Setenv("WSNSWEEP_WORKER", "1") // shard subprocesses re-enter run()
	dir := t.TempDir()
	if err := run([]string{
		"-dispatch", "2", "-schemes", "SR,AR", "-grids", "8x8",
		"-spares", "8,24", "-replicates", "4", "-seed", "21",
		"-out", dir, "-name", "camp", "-metrics", "moves", "-quiet",
	}); err != nil {
		t.Fatal(err)
	}
	// The fleet leaves shard artifacts plus the merged campaign. With 2
	// slots the queue defaults to 4 replicate blocks (2 per slot).
	for _, f := range []string{
		"camp.json", "camp-b1.json", "camp-b2.json", "camp-b3.json", "camp-b4.json",
		"camp-b1.spec.json", "camp-b4.spec.json", "camp-moves.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing fleet artifact %s: %v", f, err)
		}
	}

	refDir := t.TempDir()
	if err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "4", "-seed", "21", "-workers", "4",
		"-out", refDir, "-name", "camp", "-metrics", "moves", "-quiet",
	}); err != nil {
		t.Fatal(err)
	}
	assertManifestsEquivalent(t, filepath.Join(dir, "camp.json"), filepath.Join(refDir, "camp.json"))
}

// TestDispatchRetriesDeadWorkerAndResumes: the worker slot 1 launches
// first is killed mid-run (after checkpointing one completed cell); the
// driver must retry its shard with -resume and the merged result must
// still match the unsharded campaign.
func TestDispatchRetriesDeadWorkerAndResumes(t *testing.T) {
	dir := t.TempDir()
	died := filepath.Join(dir, "died")
	script := filepath.Join(dir, "flaky.sh")
	if err := os.WriteFile(script, []byte(`#!/bin/sh
s=$1; shift
if [ "$s" = "1" ] && [ ! -e "`+died+`" ]; then
  touch "`+died+`"
  export WSNSWEEP_EXIT_AFTER=3
fi
exec "$@"
`), 0o755); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	attempts := 0
	spec := sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{8, 24},
		Replicates: 4,
		BaseSeed:   21,
	}
	manifest, _, err := dispatch.Run(context.Background(), spec, dispatch.Options{
		Slots:  2,
		Blocks: 2,
		Worker: []string{"/bin/sh", script, "{slot}", os.Args[0]},
		OutDir: dir,
		Name:   "camp",
		Env:    []string{"WSNSWEEP_WORKER=1"},
		Stderr: io.Discard,
		OnProgress: func(s dispatch.FleetSnapshot) {
			mu.Lock()
			defer mu.Unlock()
			for _, sh := range s.Shards {
				if sh.Attempts > attempts {
					attempts = sh.Attempts
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(died); err != nil {
		t.Fatal("the flaky worker never died; the retry path was not exercised")
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 2 {
		t.Errorf("dead worker's shard attempts = %d, want 2 (die once, resume once)", got)
	}
	if _, err := manifest.Save(dir); err != nil {
		t.Fatal(err)
	}

	refDir := t.TempDir()
	if err := run([]string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "4", "-seed", "21",
		"-out", refDir, "-name", "camp", "-metrics", "", "-quiet",
	}); err != nil {
		t.Fatal(err)
	}
	assertManifestsEquivalent(t, filepath.Join(dir, "camp.json"), filepath.Join(refDir, "camp.json"))
	// Every shard's manifest accounts for all the trials it represents —
	// the retried one's checkpointed prefix included.
	for _, name := range []string{"camp-b1.json", "camp-b2.json"} {
		var sh experiment.Manifest
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &sh); err != nil {
			t.Fatal(err)
		}
		if sh.Jobs != 4 {
			t.Errorf("%s jobs = %d, want 4", name, sh.Jobs)
		}
	}
}

// TestDispatchFlagConflicts: modes that cannot compose must say so.
func TestDispatchFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-dispatch", "2", "-shard", "1/2"}, "-dispatch splits"},
		{[]string{"-dispatch", "2", "-checkpoint"}, "-checkpoint belongs to workers"},
		{[]string{"-exec", "ssh box --"}, "-exec only applies"},
		{[]string{"-lease-timeout", "30s"}, "only apply to dispatch mode"},
		{[]string{"-max-retries", "5"}, "only apply to dispatch mode"},
		{[]string{"-fleet", "inv.txt", "-exec", "ssh box --"}, "drop -exec"},
		{[]string{"-progress", "sometimes"}, "unknown -progress mode"},
		{[]string{"-pprof"}, "requires -dash"},
	}
	for _, c := range cases {
		err := run(append(c.args, "-schemes", "SR", "-grids", "8x8", "-spares", "8",
			"-replicates", "4", "-out", dir, "-quiet"))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want error containing %q", c.args, err, c.want)
		}
	}
}
