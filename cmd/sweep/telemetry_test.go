package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/telemetry"
)

// TestDispatchProgressJSONEmitsFleetStream: "-dispatch n -progress=json"
// re-emits the merged fleet's progress as the same NDJSON protocol the
// workers speak — initial full-total event first, terminal event last —
// so a supervisor of supervisors composes.
func TestDispatchProgressJSONEmitsFleetStream(t *testing.T) {
	t.Setenv("WSNSWEEP_WORKER", "1")
	buf := captureProgress(t)
	dir := t.TempDir()
	if err := run([]string{
		"-dispatch", "2", "-schemes", "SR", "-grids", "8x8",
		"-spares", "8,24", "-replicates", "4", "-seed", "11",
		"-out", dir, "-name", "fj", "-metrics", "", "-progress", "json",
	}); err != nil {
		t.Fatal(err)
	}
	events := parseEvents(t, buf.Bytes())
	if len(events) < 2 {
		t.Fatalf("got %d fleet events, want at least initial and terminal:\n%s", len(events), buf.String())
	}
	if first := events[0]; first.Done != 0 || first.Total != 8 {
		t.Errorf("initial fleet event %+v, want 0/8 (the full campaign total, up front)", first)
	}
	if last := events[len(events)-1]; last.Done != 8 || last.Total != 8 {
		t.Errorf("terminal fleet event %+v, want 8/8", last)
	}
	prev := -1
	for _, ev := range events {
		if ev.Done < prev {
			t.Errorf("fleet stream regressed: done %d after %d", ev.Done, prev)
		}
		prev = ev.Done
	}
}

// TestDashDispatchAcceptance is the PR's acceptance scenario: a
// dispatched fleet with -dash serves /healthz, streams at least one SSE
// event whose terminal done/total matches the manifest's job count, and
// appends exactly one ledger record whose spec hash reproduces from the
// manifest's embedded spec.
func TestDashDispatchAcceptance(t *testing.T) {
	t.Setenv("WSNSWEEP_WORKER", "1")
	dir := t.TempDir()

	type sseResult struct {
		snaps []telemetry.Snapshot
		err   error
	}
	sseCh := make(chan sseResult, 1)
	var healthErr error
	dashNotify = func(addr string, hub *telemetry.Hub) {
		// The hook runs after the server binds and before the campaign
		// starts, so both probes observe a live, still-empty dashboard.
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			healthErr = err
		} else {
			if resp.StatusCode != http.StatusOK {
				healthErr = fmt.Errorf("healthz status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		go func() {
			var res sseResult
			resp, err := http.Get("http://" + addr + "/events")
			if err != nil {
				res.err = err
				sseCh <- res
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				payload, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "data: ")
				if !ok {
					continue
				}
				var s telemetry.Snapshot
				if err := json.Unmarshal([]byte(payload), &s); err != nil {
					res.err = fmt.Errorf("bad SSE payload %q: %w", payload, err)
					break
				}
				res.snaps = append(res.snaps, s)
			}
			sseCh <- res
		}()
	}
	defer func() { dashNotify = nil }()

	if err := run([]string{
		"-dispatch", "2", "-schemes", "SR,AR", "-grids", "8x8",
		"-spares", "8", "-replicates", "4", "-seed", "13",
		"-out", dir, "-name", "dash", "-metrics", "", "-quiet",
		"-dash", "127.0.0.1:0",
	}); err != nil {
		t.Fatal(err)
	}
	if healthErr != nil {
		t.Fatalf("healthz during the run: %v", healthErr)
	}
	// run() closed the server on the way out, which ends the SSE stream
	// after draining — the reader goroutine finishes on its own.
	var res sseResult
	select {
	case res = <-sseCh:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never ended after the dashboard closed")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.snaps) == 0 {
		t.Fatal("no SSE events streamed during the run")
	}

	data, err := os.ReadFile(filepath.Join(dir, "dash.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m experiment.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	last := res.snaps[len(res.snaps)-1]
	if !last.Final {
		t.Errorf("last SSE event %+v is not final", last)
	}
	if last.Fleet.Done != m.Jobs || last.Fleet.Total != m.Jobs {
		t.Errorf("terminal SSE event %d/%d, want %d/%d (the manifest's job count)",
			last.Fleet.Done, last.Fleet.Total, m.Jobs, m.Jobs)
	}

	// Exactly one ledger record — workers run with -ledger none, only
	// the driver appends — and its spec hash reproduces from the spec
	// the manifest embeds.
	recs, err := telemetry.ReadLedger(filepath.Join(dir, "ledger.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want exactly 1 (the driver's):\n%+v", len(recs), recs)
	}
	rec := recs[0]
	if rec.Mode != "dispatch" || rec.Shards != 4 || rec.Jobs != m.Jobs {
		t.Errorf("ledger record = %+v, want mode dispatch, 4 shards, %d jobs", rec, m.Jobs)
	}
	if rec.Status != telemetry.StatusCompleted {
		t.Errorf("ledger record status = %q, want completed", rec.Status)
	}
	var spec sim.CampaignSpec
	if err := json.Unmarshal(m.Spec, &spec); err != nil {
		t.Fatal(err)
	}
	hash, err := telemetry.SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SpecHash != hash {
		t.Errorf("ledger spec hash %s, but re-marshaling the manifest's spec hashes to %s", rec.SpecHash, hash)
	}
}

// TestDashboardDoesNotPerturbManifests is the differential guarantee:
// telemetry only observes. The same campaign run with a live dashboard
// and a ledger writes a byte-identical manifest to one run dark.
func TestDashboardDoesNotPerturbManifests(t *testing.T) {
	dim := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "7", "-metrics", "", "-quiet",
	}
	dashDir, darkDir := t.TempDir(), t.TempDir()
	if err := run(append([]string{
		"-out", dashDir, "-name", "camp", "-dash", "127.0.0.1:0",
	}, dim...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{
		"-out", darkDir, "-name", "camp", "-ledger", "none",
	}, dim...)); err != nil {
		t.Fatal(err)
	}
	instrumented, err := os.ReadFile(filepath.Join(dashDir, "camp.json"))
	if err != nil {
		t.Fatal(err)
	}
	dark, err := os.ReadFile(filepath.Join(darkDir, "camp.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(instrumented, dark) {
		t.Errorf("dashboard+ledger run perturbed the manifest:\n%s\nvs\n%s", instrumented, dark)
	}
	// The instrumented single-process run ledgers as mode "run" with its
	// per-group wall spans; the dark run wrote no ledger at all.
	recs, err := telemetry.ReadLedger(filepath.Join(dashDir, "ledger.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Mode != "run" {
		t.Fatalf("instrumented ledger = %+v, want one mode-run record", recs)
	}
	if len(recs[0].GroupSeconds) == 0 {
		t.Error("ledger record lacks per-group wall spans")
	}
	if _, err := os.Stat(filepath.Join(darkDir, "ledger.ndjson")); !os.IsNotExist(err) {
		t.Errorf("-ledger none still wrote a ledger (stat err %v)", err)
	}
}

// TestDashAddrFile: WSNSWEEP_DASH_ADDR_FILE publishes the bound address
// for ":0" runs — the hook the CI smoke test reads the port from.
func TestDashAddrFile(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	t.Setenv(dashAddrFileEnv, addrFile)
	dir := t.TempDir()
	var notified string
	dashNotify = func(addr string, hub *telemetry.Hub) { notified = addr }
	defer func() { dashNotify = nil }()
	if err := run([]string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8",
		"-replicates", "2", "-seed", "3", "-out", dir, "-name", "a",
		"-metrics", "", "-quiet", "-dash", "127.0.0.1:0", "-ledger", "none",
	}); err != nil {
		t.Fatal(err)
	}
	written, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != notified || notified == "" || strings.HasSuffix(notified, ":0") {
		t.Errorf("addr file %q vs notified %q, want the real bound port", written, notified)
	}
}
