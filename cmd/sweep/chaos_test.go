package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// chaosCampaign returns the common flag set for the chaos tests: a small
// campaign that a 2-slot fleet splits into 4 one-replicate blocks of 2
// trials each, so WSNSWEEP_CHAOS_AFTER=1 fires every fault mid-block —
// the worker's on-disk state is a valid one-cell prefix.
func chaosCampaign(extra ...string) []string {
	return append(extra,
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "4", "-seed", "33", "-metrics", "", "-quiet")
}

// TestChaosMatrix is the fault-tolerance acceptance matrix: every
// WSNSWEEP_CHAOS mode is injected into a dispatched fleet, exactly one
// worker suffers the fault (claim-dir semantics), and the fleet must
// still converge to a merged manifest equivalent — under the merge
// contract — to the same campaign run unsharded and fault-free.
func TestChaosMatrix(t *testing.T) {
	refDir := t.TempDir()
	if err := run(chaosCampaign("-out", refDir, "-name", "camp")); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"hang", "crash", "slow", "corrupt-progress", "partial-manifest"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			claims := t.TempDir()
			t.Setenv("WSNSWEEP_WORKER", "1") // shard subprocesses re-enter run()
			t.Setenv("WSNSWEEP_CHAOS", mode)
			t.Setenv("WSNSWEEP_CHAOS_DIR", claims)
			t.Setenv("WSNSWEEP_CHAOS_AFTER", "1")
			args := chaosCampaign("-dispatch", "2", "-out", dir, "-name", "camp")
			// A short lease so the hung worker's silence is detected
			// quickly — but with enough headroom that a healthy worker's
			// startup (slow under -race on a loaded box) still beats it.
			const lease = 3 * time.Second
			if mode == "hang" {
				args = append(args, "-lease-timeout", lease.String())
			}
			start := time.Now()
			if err := run(args); err != nil {
				t.Fatalf("fleet under %s chaos did not converge: %v", mode, err)
			}
			elapsed := time.Since(start)
			// The claim file proves the fault actually fired — a matrix
			// entry that silently skipped its fault would test nothing.
			if _, err := os.Stat(filepath.Join(claims, "chaos-"+mode)); err != nil {
				t.Errorf("the %s fault never fired (no claim file): %v", mode, err)
			}
			// Acceptance bound: a hung worker is detected and its shard
			// re-issued within 2x the lease timeout; the rest of the run
			// (reaping the corpse, rerunning two trials, merging) rides in
			// the slack.
			if bound := 2*lease + 5*time.Second; mode == "hang" && elapsed > bound {
				t.Errorf("hang recovery took %v, want < %v (2x lease + slack)", elapsed, bound)
			}
			assertManifestsEquivalent(t,
				filepath.Join(dir, "camp.json"), filepath.Join(refDir, "camp.json"))
		})
	}
}

// TestDispatchDriverKillAtomicity is the kill-during-checkpoint /
// kill-during-merge satellite at fleet scope: SIGKILL the dispatch
// driver itself — once mid-fleet (first shard manifest just landed) and
// once in the merge window (all shard manifests present) — then assert
// the atomic-rewrite contract: every JSON artifact on disk parses whole
// (a rename either happened or didn't; no torn files), and a -resume
// rerun converges to a merged manifest byte-identical to an undisturbed
// fleet's.
func TestDispatchDriverKillAtomicity(t *testing.T) {
	refDir := t.TempDir()
	t.Setenv("WSNSWEEP_WORKER", "1")
	if err := run(chaosCampaign("-dispatch", "2", "-out", refDir, "-name", "camp")); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, "camp.json"))
	if err != nil {
		t.Fatal(err)
	}

	// shardManifests counts landed shard manifests, excluding the
	// .spec.json files the driver writes at startup.
	shardManifests := func(dir string) int {
		m, _ := filepath.Glob(filepath.Join(dir, "camp-b*.json"))
		n := 0
		for _, p := range m {
			if !strings.HasSuffix(p, ".spec.json") {
				n++
			}
		}
		return n
	}
	stages := []struct {
		name string
		// ready reports whether the kill trigger has been reached.
		ready func(dir string) bool
	}{
		{"mid-fleet", func(dir string) bool { return shardManifests(dir) >= 1 }},
		{"merge-window", func(dir string) bool { return shardManifests(dir) >= 4 }},
	}
	for _, stage := range stages {
		t.Run(stage.name, func(t *testing.T) {
			dir := t.TempDir()
			// The driver is this test binary re-entering run(); slow chaos
			// (no claim dir: every worker) stretches the fleet's runtime so
			// the kill lands inside it rather than after.
			cmd := exec.Command(os.Args[0],
				chaosCampaign("-dispatch", "2", "-out", dir, "-name", "camp")...)
			cmd.Env = append(os.Environ(),
				"WSNSWEEP_WORKER=1", "WSNSWEEP_CHAOS=slow", "WSNSWEEP_CHAOS_SLOW_MS=150")
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for !stage.ready(dir) && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			cmd.Process.Signal(syscall.SIGKILL)
			cmd.Wait()
			// Orphaned workers die on their next progress write (the pipe's
			// read end is gone); give them a moment to finish or fall over.
			time.Sleep(1500 * time.Millisecond)

			// Atomicity: whatever JSON landed before the kill is whole.
			arts, err := filepath.Glob(filepath.Join(dir, "*.json"))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range arts {
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if !json.Valid(data) {
					t.Errorf("%s is torn after the driver kill:\n%s", p, data)
				}
			}

			// Resume: the rerun picks up every checkpointed prefix and the
			// result is byte-identical to the undisturbed fleet's merge.
			if err := run(chaosCampaign(
				"-dispatch", "2", "-resume", "-out", dir, "-name", "camp")); err != nil {
				t.Fatalf("resume after driver kill: %v", err)
			}
			got, err := os.ReadFile(filepath.Join(dir, "camp.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("resumed merge differs from undisturbed fleet:\n%s\nvs\n%s", got, ref)
			}
		})
	}
}
