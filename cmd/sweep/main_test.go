package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"wsncover/internal/sim"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("10, 55,200")
	if err != nil || !reflect.DeepEqual(ints, []int{10, 55, 200}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("bad int should fail")
	}
	if ints, err := parseInts(""); err != nil || ints != nil {
		t.Errorf("empty list = %v, %v", ints, err)
	}

	schemes, err := parseSchemes("SR,ar")
	if err != nil || !reflect.DeepEqual(schemes, []sim.SchemeKind{sim.SR, sim.AR}) {
		t.Errorf("parseSchemes = %v, %v", schemes, err)
	}
	if _, err := parseSchemes("SR,XY"); err == nil {
		t.Error("bad scheme should fail")
	}

	grids, err := parseGrids("16x16,8x12")
	if err != nil || !reflect.DeepEqual(grids, []sim.GridSize{{Cols: 16, Rows: 16}, {Cols: 8, Rows: 12}}) {
		t.Errorf("parseGrids = %v, %v", grids, err)
	}
	for _, bad := range []string{"16by16", "16x16x3", "8x8junk"} {
		if _, err := parseGrids(bad); err == nil {
			t.Errorf("parseGrids(%q) should fail", bad)
		}
	}

	fails, err := parseFailures("holes,jam")
	if err != nil || !reflect.DeepEqual(fails, []sim.FailureMode{sim.FailHoles, sim.FailJam}) {
		t.Errorf("parseFailures = %v, %v", fails, err)
	}
	if _, err := parseFailures("flood"); err == nil {
		t.Error("bad failure should fail")
	}
}

func TestRunFlagCampaign(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "11", "-out", dir, "-name", "unit",
		"-metrics", "moves,success_rate", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "unit.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs   int `json:"jobs"`
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2*2*3 || len(m.Points) != 4 {
		t.Errorf("manifest jobs=%d points=%d", m.Jobs, len(m.Points))
	}
	for _, f := range []string{"unit-moves.csv", "unit-moves.dat", "unit-success_rate.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"failures": ["jam"],
		"replicates": 2,
		"seed": 4
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-spec", specPath, "-out", dir, "-name", "jamtest",
		"-metrics", "all", "-quiet", "-ascii",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jamtest.json")); err != nil {
		t.Error(err)
	}
	// "all" exports every recorded metric, holes_before included.
	if _, err := os.Stat(filepath.Join(dir, "jamtest-holes_before.csv")); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-schemes", "nope"},
		{"-grids", "16"},
		{"-spares", "ten"},
		{"-holes", "1.5"},
		{"-failures", "flood"},
		{"-metrics", "unknown_metric", "-grids", "8x8", "-spares", "8", "-replicates", "1", "-quiet"},
		{"-spec", "/nonexistent/spec.json"},
	}
	for _, args := range cases {
		if err := run(append(args, "-out", t.TempDir())); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestProgressMeter(t *testing.T) {
	var buf strings.Builder
	p := newProgressMeter(&buf)
	p.start = p.start.Add(-2 * time.Second) // pretend 2s elapsed
	p.last = p.start
	p.report(100, 400)
	out := buf.String()
	if !strings.Contains(out, "100/400 trials") {
		t.Errorf("meter output %q lacks completed/total", out)
	}
	if !strings.Contains(out, "trials/s") || !strings.Contains(out, "ETA") {
		t.Errorf("meter output %q lacks rate or ETA", out)
	}

	// Rapid updates are throttled; the final update always renders and
	// reports the elapsed time instead of an ETA.
	buf.Reset()
	p.last = time.Now()
	p.report(101, 400)
	if buf.Len() != 0 {
		t.Errorf("throttled update rendered %q", buf.String())
	}
	p.report(400, 400)
	if out := buf.String(); !strings.Contains(out, "400/400 trials") || !strings.Contains(out, "in ") {
		t.Errorf("final output %q", out)
	}
}

func TestFormatETA(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Millisecond:                                 "<1s",
		42 * time.Second:                                       "42s",
		59*time.Second + 700*time.Millisecond:                  "1m00s", // rounds across the unit boundary
		3*time.Minute + 7*time.Second:                          "3m07s",
		59*time.Minute + 59*time.Second + 800*time.Millisecond: "1h00m",
		2*time.Hour + 5*time.Minute:                            "2h05m",
		26*time.Hour + 30*time.Minute:                          "26h30m",
	}
	for d, want := range cases {
		if got := formatETA(d); got != want {
			t.Errorf("formatETA(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRunSpecFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"replciates": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-out", dir, "-quiet"}); err == nil {
		t.Error("typoed spec field should fail")
	}
}
