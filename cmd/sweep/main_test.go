package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"wsncover/internal/sim"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("10, 55,200")
	if err != nil || !reflect.DeepEqual(ints, []int{10, 55, 200}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("bad int should fail")
	}
	if ints, err := parseInts(""); err != nil || ints != nil {
		t.Errorf("empty list = %v, %v", ints, err)
	}

	schemes, err := parseSchemes("SR,ar")
	if err != nil || !reflect.DeepEqual(schemes, []sim.SchemeKind{sim.SR, sim.AR}) {
		t.Errorf("parseSchemes = %v, %v", schemes, err)
	}
	if _, err := parseSchemes("SR,XY"); err == nil {
		t.Error("bad scheme should fail")
	}

	grids, err := parseGrids("16x16,8x12")
	if err != nil || !reflect.DeepEqual(grids, []sim.GridSize{{Cols: 16, Rows: 16}, {Cols: 8, Rows: 12}}) {
		t.Errorf("parseGrids = %v, %v", grids, err)
	}
	for _, bad := range []string{"16by16", "16x16x3", "8x8junk"} {
		if _, err := parseGrids(bad); err == nil {
			t.Errorf("parseGrids(%q) should fail", bad)
		}
	}

	fails, err := parseFailures("holes,jam")
	if err != nil || !reflect.DeepEqual(fails, []sim.FailureMode{sim.FailHoles, sim.FailJam}) {
		t.Errorf("parseFailures = %v, %v", fails, err)
	}
	if _, err := parseFailures("flood"); err == nil {
		t.Error("bad failure should fail")
	}
}

func TestRunFlagCampaign(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "11", "-out", dir, "-name", "unit",
		"-metrics", "moves,success_rate", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "unit.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs   int `json:"jobs"`
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2*2*3 || len(m.Points) != 4 {
		t.Errorf("manifest jobs=%d points=%d", m.Jobs, len(m.Points))
	}
	for _, f := range []string{"unit-moves.csv", "unit-moves.dat", "unit-success_rate.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"failures": ["jam"],
		"replicates": 2,
		"seed": 4
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-spec", specPath, "-out", dir, "-name", "jamtest",
		"-metrics", "all", "-quiet", "-ascii",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jamtest.json")); err != nil {
		t.Error(err)
	}
	// "all" exports every recorded metric, holes_before included.
	if _, err := os.Stat(filepath.Join(dir, "jamtest-holes_before.csv")); err != nil {
		t.Error(err)
	}
}

func TestParseWorkloadsAndRunners(t *testing.T) {
	wls, err := parseWorkloads("holes, churn")
	if err != nil || !reflect.DeepEqual(wls, []sim.WorkloadSpec{{Kind: "holes"}, {Kind: "churn"}}) {
		t.Errorf("parseWorkloads = %v, %v", wls, err)
	}
	if _, err := parseWorkloads("meteor"); err == nil {
		t.Error("unknown workload kind should fail")
	}
	rs, err := parseRunners("sync,async")
	if err != nil || !reflect.DeepEqual(rs, []sim.RunnerKind{sim.RunSync, sim.RunAsync}) {
		t.Errorf("parseRunners = %v, %v", rs, err)
	}
	if _, err := parseRunners("warp"); err == nil {
		t.Error("unknown runner should fail")
	}
}

// TestRunWorkloadSpecCampaigns is the CLI acceptance criterion: churn
// and depletion campaigns run end-to-end from a spec file, including the
// async runner axis.
func TestRunWorkloadSpecCampaigns(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"workloads": [
			{"kind": "churn", "holes": 2, "every": 4, "waves": 2},
			{"kind": "depletion", "budget": 15}
		],
		"runners": ["sync", "async"],
		"replicates": 2,
		"seed": 6
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-spec", specPath, "-out", dir, "-name", "wl",
		"-metrics", "moves,recovered", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wl.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs   int `json:"jobs"`
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 runners x 1 scheme x 1 grid x 1 spare x 2 reps.
	if m.Jobs != 8 || len(m.Points) != 4 {
		t.Errorf("manifest jobs=%d points=%d", m.Jobs, len(m.Points))
	}
	groups := map[string]bool{}
	for _, p := range m.Points {
		groups[p.Group] = true
	}
	for _, want := range []string{
		"SR 8x8 churn h=2 e=4 w=2",
		"SR 8x8 churn h=2 e=4 w=2 async",
		"SR 8x8 depletion b=15",
		"SR 8x8 depletion b=15 async",
	} {
		if !groups[want] {
			t.Errorf("missing group %q in %v", want, groups)
		}
	}
}

func TestRunWorkloadsFlag(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "12",
		"-workloads", "churn", "-replicates", "2", "-seed", "3",
		"-out", dir, "-name", "churnflag", "-metrics", "moves", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "churnflag.json")); err != nil {
		t.Error(err)
	}
	// -workloads and an explicit -failures conflict.
	err = run([]string{
		"-workloads", "churn", "-failures", "jam",
		"-out", dir, "-quiet",
	})
	if err == nil {
		t.Error("-workloads with -failures should fail")
	}
}

// TestRunResume pins the -resume satellite: a manifest produced by a
// partial campaign plus a resumed run over a wider spec must be
// byte-identical to the wider campaign run from scratch, and cells
// already present must not rerun.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR,AR", "-grids", "8x8", "-replicates", "3",
		"-seed", "11", "-out", dir, "-name", "res",
		"-metrics", "moves", "-quiet",
	}
	// Phase 1: the narrow campaign.
	if err := run(append([]string{"-spares", "8"}, base...)); err != nil {
		t.Fatal(err)
	}
	narrow, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Phase 2: resume over the widened spares axis.
	if err := run(append([]string{"-spares", "8,24", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(narrow, resumed) {
		t.Fatal("resume added no points")
	}
	// Reference: the widened campaign from scratch. Replicate seeds are
	// shared across cells, so the N=8 cells agree and the merged
	// manifest must be byte-identical.
	refDir := t.TempDir()
	refArgs := []string{
		"-spares", "8,24", "-schemes", "SR,AR", "-grids", "8x8",
		"-replicates", "3", "-seed", "11", "-out", refDir, "-name", "res",
		"-metrics", "moves", "-quiet",
	}
	if err := run(refArgs); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Errorf("resumed manifest differs from from-scratch manifest:\n%s\nvs\n%s", resumed, ref)
	}
	// Phase 3: resuming a complete manifest runs nothing and keeps the
	// points intact.
	if err := run(append([]string{"-spares", "8,24", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, ref) {
		t.Error("no-op resume changed the manifest")
	}
}

// TestRunResumeDropsOrphanCells pins manifest self-consistency: prior
// points whose dimension values the current spec no longer lists are
// dropped, so the written manifest never contains points its recorded
// spec cannot describe.
func TestRunResumeDropsOrphanCells(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-grids", "8x8", "-spares", "8", "-replicates", "2", "-seed", "3",
		"-out", dir, "-name", "orph", "-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-schemes", "SR,AR"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-schemes", "SR", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "orph.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 1 || m.Points[0].Group != "SR 8x8" {
		t.Errorf("narrowed resume kept orphan points: %+v", m.Points)
	}
}

// TestRunResumeRejectsIncompatibleSpec pins the merge-soundness check:
// a resume may extend dimension lists, but changing the seed, replicate
// count, or pass-through trial parameters would silently mix
// incomparable points under unchanged (group, N) labels.
func TestRunResumeRejectsIncompatibleSpec(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR", "-grids", "8x8", "-out", dir, "-name", "inc",
		"-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-spares", "8", "-seed", "1", "-replicates", "2"}, base...)); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-spares", "8,24", "-seed", "2", "-replicates", "2", "-resume"},
		{"-spares", "8,24", "-seed", "1", "-replicates", "5", "-resume"},
		{"-spares", "8,24", "-seed", "1", "-replicates", "2", "-adjacent", "-resume"},
	} {
		if err := run(append(args, base...)); err == nil ||
			!strings.Contains(err.Error(), "resume manifest") {
			t.Errorf("run(%v) = %v, want incompatible-resume error", args, err)
		}
	}
	// The compatible extension still works.
	if err := run(append([]string{"-spares", "8,24", "-seed", "1", "-replicates", "2", "-resume"}, base...)); err != nil {
		t.Errorf("compatible resume failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-schemes", "nope"},
		{"-grids", "16"},
		{"-spares", "ten"},
		{"-holes", "1.5"},
		{"-failures", "flood"},
		{"-metrics", "unknown_metric", "-grids", "8x8", "-spares", "8", "-replicates", "1", "-quiet"},
		{"-spec", "/nonexistent/spec.json"},
	}
	for _, args := range cases {
		if err := run(append(args, "-out", t.TempDir())); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestProgressMeter(t *testing.T) {
	var buf strings.Builder
	p := newProgressMeter(&buf)
	p.start = p.start.Add(-2 * time.Second) // pretend 2s elapsed
	p.last = p.start
	p.report(100, 400)
	out := buf.String()
	if !strings.Contains(out, "100/400 trials") {
		t.Errorf("meter output %q lacks completed/total", out)
	}
	if !strings.Contains(out, "trials/s") || !strings.Contains(out, "ETA") {
		t.Errorf("meter output %q lacks rate or ETA", out)
	}

	// Rapid updates are throttled; the final update always renders and
	// reports the elapsed time instead of an ETA.
	buf.Reset()
	p.last = time.Now()
	p.report(101, 400)
	if buf.Len() != 0 {
		t.Errorf("throttled update rendered %q", buf.String())
	}
	p.report(400, 400)
	if out := buf.String(); !strings.Contains(out, "400/400 trials") || !strings.Contains(out, "in ") {
		t.Errorf("final output %q", out)
	}
}

func TestFormatETA(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Millisecond:                                 "<1s",
		42 * time.Second:                                       "42s",
		59*time.Second + 700*time.Millisecond:                  "1m00s", // rounds across the unit boundary
		3*time.Minute + 7*time.Second:                          "3m07s",
		59*time.Minute + 59*time.Second + 800*time.Millisecond: "1h00m",
		2*time.Hour + 5*time.Minute:                            "2h05m",
		26*time.Hour + 30*time.Minute:                          "26h30m",
	}
	for d, want := range cases {
		if got := formatETA(d); got != want {
			t.Errorf("formatETA(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRunSpecFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"replciates": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-out", dir, "-quiet"}); err == nil {
		t.Error("typoed spec field should fail")
	}
}
