package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("10, 55,200")
	if err != nil || !reflect.DeepEqual(ints, []int{10, 55, 200}) {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("bad int should fail")
	}
	if ints, err := parseInts(""); err != nil || ints != nil {
		t.Errorf("empty list = %v, %v", ints, err)
	}

	schemes, err := parseSchemes("SR,ar")
	if err != nil || !reflect.DeepEqual(schemes, []sim.SchemeKind{sim.SR, sim.AR}) {
		t.Errorf("parseSchemes = %v, %v", schemes, err)
	}
	if _, err := parseSchemes("SR,XY"); err == nil {
		t.Error("bad scheme should fail")
	}

	grids, err := parseGrids("16x16,8x12")
	if err != nil || !reflect.DeepEqual(grids, []sim.GridSize{{Cols: 16, Rows: 16}, {Cols: 8, Rows: 12}}) {
		t.Errorf("parseGrids = %v, %v", grids, err)
	}
	for _, bad := range []string{"16by16", "16x16x3", "8x8junk"} {
		if _, err := parseGrids(bad); err == nil {
			t.Errorf("parseGrids(%q) should fail", bad)
		}
	}

	fails, err := parseFailures("holes,jam")
	if err != nil || !reflect.DeepEqual(fails, []sim.FailureMode{sim.FailHoles, sim.FailJam}) {
		t.Errorf("parseFailures = %v, %v", fails, err)
	}
	if _, err := parseFailures("flood"); err == nil {
		t.Error("bad failure should fail")
	}
}

func TestRunFlagCampaign(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "3", "-seed", "11", "-out", dir, "-name", "unit",
		"-metrics", "moves,success_rate", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "unit.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs   int `json:"jobs"`
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2*2*3 || len(m.Points) != 4 {
		t.Errorf("manifest jobs=%d points=%d", m.Jobs, len(m.Points))
	}
	for _, f := range []string{"unit-moves.csv", "unit-moves.dat", "unit-success_rate.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"failures": ["jam"],
		"replicates": 2,
		"seed": 4
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-spec", specPath, "-out", dir, "-name", "jamtest",
		"-metrics", "all", "-quiet", "-ascii",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jamtest.json")); err != nil {
		t.Error(err)
	}
	// "all" exports every recorded metric, holes_before included.
	if _, err := os.Stat(filepath.Join(dir, "jamtest-holes_before.csv")); err != nil {
		t.Error(err)
	}
}

func TestParseWorkloadsAndRunners(t *testing.T) {
	wls, err := parseWorkloads("holes, churn")
	if err != nil || !reflect.DeepEqual(wls, []sim.WorkloadSpec{{Kind: "holes"}, {Kind: "churn"}}) {
		t.Errorf("parseWorkloads = %v, %v", wls, err)
	}
	if _, err := parseWorkloads("meteor"); err == nil {
		t.Error("unknown workload kind should fail")
	}
	rs, err := parseRunners("sync,async")
	if err != nil || !reflect.DeepEqual(rs, []sim.RunnerKind{sim.RunSync, sim.RunAsync}) {
		t.Errorf("parseRunners = %v, %v", rs, err)
	}
	if _, err := parseRunners("warp"); err == nil {
		t.Error("unknown runner should fail")
	}
}

// TestRunWorkloadSpecCampaigns is the CLI acceptance criterion: churn
// and depletion campaigns run end-to-end from a spec file, including the
// async runner axis.
func TestRunWorkloadSpecCampaigns(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"workloads": [
			{"kind": "churn", "holes": 2, "every": 4, "waves": 2},
			{"kind": "depletion", "budget": 15}
		],
		"runners": ["sync", "async"],
		"replicates": 2,
		"seed": 6
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-spec", specPath, "-out", dir, "-name", "wl",
		"-metrics", "moves,recovered", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wl.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs   int `json:"jobs"`
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 runners x 1 scheme x 1 grid x 1 spare x 2 reps.
	if m.Jobs != 8 || len(m.Points) != 4 {
		t.Errorf("manifest jobs=%d points=%d", m.Jobs, len(m.Points))
	}
	groups := map[string]bool{}
	for _, p := range m.Points {
		groups[p.Group] = true
	}
	for _, want := range []string{
		"SR 8x8 churn h=2 e=4 w=2",
		"SR 8x8 churn h=2 e=4 w=2 async",
		"SR 8x8 depletion b=15",
		"SR 8x8 depletion b=15 async",
	} {
		if !groups[want] {
			t.Errorf("missing group %q in %v", want, groups)
		}
	}
}

func TestRunWorkloadsFlag(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "12",
		"-workloads", "churn", "-replicates", "2", "-seed", "3",
		"-out", dir, "-name", "churnflag", "-metrics", "moves", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "churnflag.json")); err != nil {
		t.Error(err)
	}
	// -workloads and an explicit -failures conflict.
	err = run([]string{
		"-workloads", "churn", "-failures", "jam",
		"-out", dir, "-quiet",
	})
	if err == nil {
		t.Error("-workloads with -failures should fail")
	}
}

// TestRunResume pins the -resume satellite: a manifest produced by a
// partial campaign plus a resumed run over a wider spec must be
// byte-identical to the wider campaign run from scratch, and cells
// already present must not rerun.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR,AR", "-grids", "8x8", "-replicates", "3",
		"-seed", "11", "-out", dir, "-name", "res",
		"-metrics", "moves", "-quiet",
	}
	// Phase 1: the narrow campaign.
	if err := run(append([]string{"-spares", "8"}, base...)); err != nil {
		t.Fatal(err)
	}
	narrow, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Phase 2: resume over the widened spares axis.
	if err := run(append([]string{"-spares", "8,24", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(narrow, resumed) {
		t.Fatal("resume added no points")
	}
	// Reference: the widened campaign from scratch. Replicate seeds are
	// shared across cells, so the N=8 cells agree and the merged
	// manifest must be byte-identical.
	refDir := t.TempDir()
	refArgs := []string{
		"-spares", "8,24", "-schemes", "SR,AR", "-grids", "8x8",
		"-replicates", "3", "-seed", "11", "-out", refDir, "-name", "res",
		"-metrics", "moves", "-quiet",
	}
	if err := run(refArgs); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, ref) {
		t.Errorf("resumed manifest differs from from-scratch manifest:\n%s\nvs\n%s", resumed, ref)
	}
	// Phase 3: resuming a complete manifest runs nothing and keeps the
	// points intact.
	if err := run(append([]string{"-spares", "8,24", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(filepath.Join(dir, "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, ref) {
		t.Error("no-op resume changed the manifest")
	}
}

// TestRunResumeDropsOrphanCells pins manifest self-consistency: prior
// points whose dimension values the current spec no longer lists are
// dropped, so the written manifest never contains points its recorded
// spec cannot describe.
func TestRunResumeDropsOrphanCells(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-grids", "8x8", "-spares", "8", "-replicates", "2", "-seed", "3",
		"-out", dir, "-name", "orph", "-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-schemes", "SR,AR"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-schemes", "SR", "-resume"}, base...)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "orph.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 1 || m.Points[0].Group != "SR 8x8" {
		t.Errorf("narrowed resume kept orphan points: %+v", m.Points)
	}
}

// TestRunResumeRejectsIncompatibleSpec pins the merge-soundness check:
// a resume may extend dimension lists, but changing the seed, replicate
// count, or pass-through trial parameters would silently mix
// incomparable points under unchanged (group, N) labels.
func TestRunResumeRejectsIncompatibleSpec(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR", "-grids", "8x8", "-out", dir, "-name", "inc",
		"-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-spares", "8", "-seed", "1", "-replicates", "2"}, base...)); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-spares", "8,24", "-seed", "2", "-replicates", "2", "-resume"},
		{"-spares", "8,24", "-seed", "1", "-replicates", "5", "-resume"},
		{"-spares", "8,24", "-seed", "1", "-replicates", "2", "-adjacent", "-resume"},
	} {
		if err := run(append(args, base...)); err == nil ||
			!strings.Contains(err.Error(), "resume manifest") {
			t.Errorf("run(%v) = %v, want incompatible-resume error", args, err)
		}
	}
	// The compatible extension still works.
	if err := run(append([]string{"-spares", "8,24", "-seed", "1", "-replicates", "2", "-resume"}, base...)); err != nil {
		t.Errorf("compatible resume failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-schemes", "nope"},
		{"-grids", "16"},
		{"-spares", "ten"},
		{"-holes", "1.5"},
		{"-failures", "flood"},
		{"-metrics", "unknown_metric", "-grids", "8x8", "-spares", "8", "-replicates", "1", "-quiet"},
		{"-spec", "/nonexistent/spec.json"},
	}
	for _, args := range cases {
		if err := run(append(args, "-out", t.TempDir())); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunSpecFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"replciates": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-out", dir, "-quiet"}); err == nil {
		t.Error("typoed spec field should fail")
	}
}

func TestParseShard(t *testing.T) {
	// 10 replicates over 3 shards: blocks of 4, 3, 3.
	cases := []struct {
		s            string
		first, count int
	}{
		{"1/3", 0, 4},
		{"2/3", 4, 3},
		{"3/3", 7, 3},
		{"1/1", 0, 10},
	}
	for _, c := range cases {
		first, count, err := parseShard(c.s, 10)
		if err != nil || first != c.first || count != c.count {
			t.Errorf("parseShard(%q, 10) = (%d, %d, %v), want (%d, %d)",
				c.s, first, count, err, c.first, c.count)
		}
	}
	for _, bad := range []string{"", "2", "0/3", "4/3", "a/b", "2/20"} {
		if _, _, err := parseShard(bad, 10); err == nil {
			t.Errorf("parseShard(%q, 10) should fail", bad)
		}
	}
}

// TestShardMergeMatchesUnsharded is the multi-box sharding story end to
// end: run a campaign whole, run it again as three -shard pieces, merge
// the pieces, and compare. Exact fields (counts, means up to the pooled
// merge's reassociation, min/max) must agree with the unsharded run.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR,AR", "-grids", "8x8", "-spares", "8,24",
		"-replicates", "5", "-seed", "21", "-out", dir, "-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-name", "full"}, base...)); err != nil {
		t.Fatal(err)
	}
	shardPaths := make([]string, 0, 3)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("shard%d", i)
		args := append([]string{"-name", name, "-shard", fmt.Sprintf("%d/3", i)}, base...)
		if err := run(args); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		shardPaths = append(shardPaths, filepath.Join(dir, name+".json"))
	}
	mergeArgs := append([]string{"-merge", "-out", dir, "-name", "merged", "-metrics", "moves"}, shardPaths...)
	if err := run(mergeArgs); err != nil {
		t.Fatalf("merge: %v", err)
	}

	load := func(name string) experiment.Manifest {
		data, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var m experiment.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	full, merged := load("full"), load("merged")
	if merged.Jobs != full.Jobs {
		t.Errorf("merged jobs = %d, full = %d", merged.Jobs, full.Jobs)
	}
	if len(merged.Points) != len(full.Points) {
		t.Fatalf("merged has %d points, full has %d", len(merged.Points), len(full.Points))
	}
	for i, fp := range full.Points {
		mp := merged.Points[i]
		if mp.Group != fp.Group || mp.X != fp.X {
			t.Fatalf("point %d: (%s, %g) vs (%s, %g)", i, mp.Group, mp.X, fp.Group, fp.X)
		}
		for name, fd := range fp.Metrics {
			md := mp.Metrics[name]
			if md.N != fd.N || md.Min != fd.Min || md.Max != fd.Max {
				t.Errorf("%s/%s %s: N/min/max (%d,%g,%g) vs (%d,%g,%g)",
					fp.Group, name, "exact fields", md.N, md.Min, md.Max, fd.N, fd.Min, fd.Max)
			}
			if math.Abs(md.Mean-fd.Mean) > 1e-9*(1+math.Abs(fd.Mean)) {
				t.Errorf("%s/%s mean %g vs %g", fp.Group, name, md.Mean, fd.Mean)
			}
			if math.Abs(md.StdDev-fd.StdDev) > 1e-9*(1+math.Abs(fd.StdDev)) {
				t.Errorf("%s/%s stddev %g vs %g", fp.Group, name, md.StdDev, fd.StdDev)
			}
		}
	}
	// The merged tables exist like a normal run's.
	if _, err := os.Stat(filepath.Join(dir, "merged-moves.csv")); err != nil {
		t.Error(err)
	}
}

// TestMergeRejectsBadShardSets: overlaps, gaps, spec mismatches,
// non-shard manifests, and the same shard passed twice must all fail
// loudly instead of merging quietly.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8",
		"-replicates", "4", "-seed", "3", "-out", dir, "-metrics", "moves", "-quiet",
	}
	mk := func(name, shard string, extra ...string) string {
		args := append([]string{"-name", name}, base...)
		if shard != "" {
			args = append(args, "-shard", shard)
		}
		args = append(args, extra...)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return filepath.Join(dir, name+".json")
	}
	s1 := mk("s1", "1/2")
	s2 := mk("s2", "2/2")
	s2copy := mk("s2copy", "2/2") // same shard rerun under a new name
	whole := mk("whole", "")
	if err := run([]string{
		"-name", "o2", "-shard", "2/2", "-schemes", "SR", "-grids", "8x8",
		"-spares", "8", "-replicates", "4", "-seed", "999", "-out", dir,
		"-metrics", "moves", "-quiet",
	}); err != nil {
		t.Fatal(err)
	}
	o2 := filepath.Join(dir, "o2.json")
	// A genuinely overlapping range ([1, 4) against [0, 2)) needs a spec
	// file: -shard only produces even tilings.
	overlapSpec := filepath.Join(dir, "overlap.spec.json")
	if err := os.WriteFile(overlapSpec, []byte(`{
		"schemes": ["SR"], "grids": [{"cols": 8, "rows": 8}], "spares": [8],
		"replicates": 4, "seed": 3, "shard_first": 1, "shard_count": 3
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", overlapSpec, "-name", "ov", "-out", dir, "-metrics", "moves", "-quiet"}); err != nil {
		t.Fatal(err)
	}
	ov := filepath.Join(dir, "ov.json")

	cases := []struct {
		name  string
		paths []string
		want  string
	}{
		{"same-path-twice", []string{s1, s1}, "passed twice"},
		{"same-shard-two-files", []string{s1, s2, s2copy}, "same shard"},
		{"overlap", []string{s1, ov}, "overlaps"},
		{"gap", []string{s2}, "missing"},
		{"missing-tail", []string{s1}, "missing"},
		{"not-a-shard", []string{s1, whole}, "not a shard manifest"},
		{"spec-mismatch", []string{s1, o2}, "different campaign specs"},
		{"no-manifests", nil, "no shard manifests"},
	}
	for _, c := range cases {
		args := append([]string{"-merge", "-out", dir, "-name", "bad", "-metrics", "moves"}, c.paths...)
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: run(-merge %v) = %v, want error containing %q", c.name, c.paths, err, c.want)
		}
	}
}

// TestMergeSingleShardDegenerate: one manifest covering the whole
// replicate range (-shard 1/1) merges into a manifest identical to the
// unsharded run's — same points, exact unmarked medians — with only the
// shard range stripped from its spec.
func TestMergeSingleShardDegenerate(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8",
		"-replicates", "4", "-seed", "3", "-out", dir, "-metrics", "moves", "-quiet",
	}
	if err := run(append([]string{"-name", "solo", "-shard", "1/1"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-name", "plain"}, base...)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-merge", filepath.Join(dir, "solo.json"),
		"-out", dir, "-name", "plain2", "-metrics", "moves"}); err != nil {
		t.Fatal(err)
	}
	plain, err := os.ReadFile(filepath.Join(dir, "plain.json"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "plain2.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Identical apart from the artifact name: normalize it and compare
	// bytes, median field included — a degenerate merge has the real
	// per-cell samples' statistics, so nothing is approximated.
	norm := strings.Replace(string(merged), `"name": "plain2"`, `"name": "plain"`, 1)
	if norm != string(plain) {
		t.Errorf("single-shard merge differs from the unsharded manifest:\n%s\nvs\n%s", norm, plain)
	}
}

// TestShardManifestRecordsRange: a shard's manifest must carry its
// replicate range so -merge can validate the tiling.
func TestShardManifestRecordsRange(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8", "-replicates", "4",
		"-seed", "5", "-shard", "2/2", "-out", dir, "-name", "s", "-metrics", "moves", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "s.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m experiment.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	var spec sim.CampaignSpec
	if err := json.Unmarshal(m.Spec, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.ShardFirst != 2 || spec.ShardCount != 2 {
		t.Errorf("shard range [%d, +%d), want [2, +2)", spec.ShardFirst, spec.ShardCount)
	}
	if m.Jobs != 2 {
		t.Errorf("shard manifest jobs = %d, want 2 (its own trials)", m.Jobs)
	}
	var pt struct {
		Metrics map[string]struct {
			N int `json:"N"`
		} `json:"metrics"`
	}
	raw, _ := json.Marshal(m.Points[0])
	if err := json.Unmarshal(raw, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Metrics["moves"].N != 2 {
		t.Errorf("shard point N = %d, want 2", pt.Metrics["moves"].N)
	}
}

// TestBareDashArgumentErrors: a lone "-" must produce an error, not an
// infinite flag-reparse loop (regression test).
func TestBareDashArgumentErrors(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"-merge", "a.json", "-"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("run(-merge a.json -) should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run(-merge a.json -) hung")
	}
	// Positionals without -merge are rejected too.
	if err := run([]string{"x.json", "-out", t.TempDir(), "-quiet"}); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("stray positional = %v, want unexpected-arguments error", err)
	}
}

// TestRunIfCached pins the CLI cache path: a first run installs its
// manifest in the store, a second run of the same science — different
// out dir, different worker count — is answered from the store without
// writing a manifest, and shard-pinned specs are refused (a shard is
// not the whole campaign).
func TestRunIfCached(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	out1 := t.TempDir()
	campaign := []string{
		"-schemes", "SR", "-grids", "8x8", "-spares", "8,16",
		"-replicates", "2", "-seed", "7", "-metrics", "moves", "-quiet",
		"-if-cached", store,
	}
	if err := run(append([]string{"-out", out1, "-name", "cached"}, campaign...)); err != nil {
		t.Fatal(err)
	}
	direct, err := os.ReadFile(filepath.Join(out1, "cached.json"))
	if err != nil {
		t.Fatal(err)
	}

	out2 := t.TempDir()
	if err := run(append([]string{"-out", out2, "-name", "cached", "-workers", "4"}, campaign...)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out2, "cached.json")); !os.IsNotExist(err) {
		t.Errorf("cache hit still wrote a manifest (stat err %v)", err)
	}
	stored, err := filepath.Glob(filepath.Join(store, "manifests", "*.json"))
	if err != nil || len(stored) != 1 {
		t.Fatalf("store holds %d manifests (%v), want 1", len(stored), err)
	}
	data, err := os.ReadFile(stored[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, direct) {
		t.Error("stored manifest differs from the direct run's")
	}

	if err := run(append([]string{"-out", t.TempDir(), "-shard", "1/2"}, campaign...)); err == nil ||
		!strings.Contains(err.Error(), "-if-cached") {
		t.Errorf("sharded -if-cached = %v, want rejection", err)
	}
}

// TestListWorkloads pins the discovery surface: -list-workloads prints
// every registered kind with its parameter list and exits without
// requiring (or running) a campaign.
func TestListWorkloads(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-list-workloads"})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	out := buf.String()
	for _, info := range sim.WorkloadInfos() {
		if !strings.Contains(out, info.Kind) {
			t.Errorf("listing missing kind %q:\n%s", info.Kind, out)
		}
	}
	if !strings.Contains(out, "params:") {
		t.Errorf("listing has no parameter lines:\n%s", out)
	}
}

// TestRunTTLDimension drives -ttls end to end: the claim-TTL axis
// multiplies the campaign's groups, the non-zero TTL shows up in the
// labels, and the flag is validated like any other dimension.
func TestRunTTLDimension(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-schemes", "SR", "-grids", "6x6", "-spares", "8",
		"-ttls", "0,6", "-replicates", "2", "-seed", "3",
		"-out", dir, "-name", "ttl", "-metrics", "moves", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ttl.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Points []struct {
			Group string `json:"group"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 2 {
		t.Fatalf("got %d points, want 2 (one per TTL)", len(m.Points))
	}
	withTTL := 0
	for _, p := range m.Points {
		if strings.Contains(p.Group, "ttl=6") {
			withTTL++
		}
	}
	if withTTL != 1 {
		t.Errorf("want exactly one ttl=6 group, got %d in %+v", withTTL, m.Points)
	}

	// The TTL axis rides SR-family sync trials only; AR rejects it.
	if err := run([]string{
		"-schemes", "AR", "-grids", "6x6", "-spares", "8", "-ttls", "6",
		"-replicates", "1", "-out", t.TempDir(), "-quiet",
	}); err == nil {
		t.Error("AR campaign with -ttls should fail validation")
	}
	if err := run([]string{
		"-schemes", "SR", "-grids", "6x6", "-spares", "8", "-ttls", "nope",
		"-replicates", "1", "-out", t.TempDir(), "-quiet",
	}); err == nil || !strings.Contains(err.Error(), "bad integer") {
		t.Errorf("bad -ttls list = %v, want bad-integer error", err)
	}
}
