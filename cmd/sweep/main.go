// Command sweep runs a multi-dimensional Monte-Carlo campaign on the
// parallel experiment engine: the cross product of control schemes, grid
// sizes, spare counts, hole counts, and failure modes, replicated and
// aggregated into mean/CI95 summaries. It writes a JSON manifest plus
// one CSV/gnuplot table per exported metric.
//
// Usage:
//
//	sweep [-schemes SR,AR] [-grids 16x16] [-spares 10,55,200]
//	      [-holes 1] [-failures holes,jam] [-replicates 20] [-seed s]
//	      [-workers w] [-metrics moves,success_rate|all] [-out dir]
//	      [-name sweep] [-ascii] [-quiet]
//	sweep -spec campaign.json [-out dir] [-name sweep] ...
//
// A spec file is the JSON form of sim.CampaignSpec and replaces the
// dimension flags. Results are bit-identical for any -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// progressMeter renders completed/total with the trial rate and an ETA on
// one self-overwriting line. Redraws are throttled to ~5/s so the meter
// never slows the worker pool; report is called from the engine's
// serialized Progress hook, so no locking is needed.
type progressMeter struct {
	w     io.Writer
	start time.Time
	last  time.Time
}

func newProgressMeter(w io.Writer) *progressMeter {
	now := time.Now()
	return &progressMeter{w: w, start: now, last: now}
}

func (p *progressMeter) report(done, total int) {
	now := time.Now()
	if done < total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "--"
	if rate > 0 && done < total {
		eta = formatETA(time.Duration(float64(total-done) / rate * float64(time.Second)))
	}
	fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s  ETA %s   ", done, total, rate, eta)
	if done == total {
		fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s  in %s   \n",
			done, total, rate, formatETA(now.Sub(p.start)))
	}
}

// formatETA renders a duration as s / m+s / h+m. The duration is rounded
// to whole seconds first so boundary values roll into the larger unit
// ("60s" never appears; 59.7s renders as 1m00s).
func formatETA(d time.Duration) string {
	if d < time.Second {
		return "<1s"
	}
	s := int(d.Seconds() + 0.5)
	switch {
	case s < 60:
		return fmt.Sprintf("%ds", s)
	case s < 3600:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%dh%02dm", s/3600, s/60%60)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSchemes(s string) ([]sim.SchemeKind, error) {
	var out []sim.SchemeKind
	for _, f := range splitList(s) {
		k, err := sim.ParseSchemeKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseGrids(s string) ([]sim.GridSize, error) {
	var out []sim.GridSize
	for _, f := range splitList(s) {
		g, err := sim.ParseGridSize(f)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func parseFailures(s string) ([]sim.FailureMode, error) {
	var out []sim.FailureMode
	for _, f := range splitList(s) {
		m, err := sim.ParseFailureMode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func loadSpec(path string) (sim.CampaignSpec, error) {
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON campaign spec file (replaces the dimension flags)")
		schemesS   = fs.String("schemes", "SR,AR", "comma-separated schemes: SR, SR+shortcut, AR")
		gridsS     = fs.String("grids", "16x16", "comma-separated grid sizes, CxR")
		sparesS    = fs.String("spares", "", "comma-separated spare counts N (default: the paper's x axis)")
		holesS     = fs.String("holes", "1", "comma-separated simultaneous hole counts")
		failuresS  = fs.String("failures", "holes", "comma-separated damage models: holes, jam")
		replicates = fs.Int("replicates", 20, "trials per campaign cell")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
		jamRadius  = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		adjacent   = fs.Bool("adjacent", false, "allow adjacent hole cells")
		metricsS   = fs.String("metrics", "moves,distance,success_rate,recovered", "metrics to export as tables, or \"all\"")
		outDir     = fs.String("out", "out", "output directory for artifacts")
		name       = fs.String("name", "sweep", "campaign name (artifact base name)")
		ascii      = fs.Bool("ascii", false, "print ASCII previews of exported tables")
		quiet      = fs.Bool("quiet", false, "suppress the progress meter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec sim.CampaignSpec
	if *specPath != "" {
		loaded, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		var err error
		if spec.Schemes, err = parseSchemes(*schemesS); err != nil {
			return err
		}
		if spec.Grids, err = parseGrids(*gridsS); err != nil {
			return err
		}
		if spec.Spares, err = parseInts(*sparesS); err != nil {
			return err
		}
		if spec.Holes, err = parseInts(*holesS); err != nil {
			return err
		}
		if spec.Failures, err = parseFailures(*failuresS); err != nil {
			return err
		}
		spec.Replicates = *replicates
		spec.BaseSeed = *seed
		spec.JamRadius = *jamRadius
		spec.AdjacentHolesOK = *adjacent
	}
	// Workers only changes wall clock, never results: an explicit flag
	// beats a value pinned in the spec file.
	workersFlagSet := false
	fs.Visit(func(f *flag.Flag) { workersFlagSet = workersFlagSet || f.Name == "workers" })
	if workersFlagSet || spec.Workers == 0 {
		spec.Workers = *workers
	}
	spec = spec.Normalized()

	totalJobs := spec.NumJobs()
	opts := experiment.Options{Workers: spec.Workers}
	if !*quiet {
		opts.Progress = newProgressMeter(os.Stderr).report
	}
	// Trials stream into online per-(group, N) accumulators inside
	// RunCampaign: campaign memory is O(groups), not O(trials).
	points, err := sim.RunCampaign(context.Background(), spec, opts)
	if err != nil {
		return err
	}

	manifest, err := experiment.NewManifest(*name, spec, totalJobs, opts.Workers, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(*outDir)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d jobs, %d points)\n", path, totalJobs, len(points))

	metrics := splitList(*metricsS)
	if len(metrics) == 1 && metrics[0] == "all" {
		metrics = experiment.MetricNames(points)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		tb, err := experiment.Table(points, metric,
			fmt.Sprintf("%s: mean %s per trial (%d replicates/cell)", *name, metric, spec.Replicates),
			"N", metric)
		if err != nil {
			return err
		}
		paths, err := tb.SaveAll(*outDir, *name+"-"+metric)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", strings.Join(paths, ", "))
		if *ascii {
			fmt.Println(tb.ASCII(72, 16))
		}
	}

	for _, p := range points {
		fmt.Printf("%-24s N=%-5g moves=%6.1f±%-5.1f dist=%7.1f success=%5.1f%% recovered=%5.1f%%\n",
			p.Group, p.X,
			p.Metrics["moves"].Mean, p.Metrics["moves"].CI95,
			p.Metrics["distance"].Mean,
			p.Metrics["success_rate"].Mean,
			100*p.Metrics["recovered"].Mean)
	}
	return nil
}
