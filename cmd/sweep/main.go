// Command sweep runs a multi-dimensional Monte-Carlo campaign on the
// parallel experiment engine: the cross product of control schemes, grid
// sizes, spare counts, hole counts, workloads, and runners, replicated
// and aggregated into mean/CI95 summaries. It writes a JSON manifest
// plus one CSV/gnuplot table per exported metric.
//
// Usage:
//
//	sweep [-schemes SR,AR] [-grids 16x16] [-spares 10,55,200]
//	      [-holes 1] [-workloads holes,churn | -failures holes,jam]
//	      [-runners sync,async] [-replicates 20] [-seed s]
//	      [-workers w] [-metrics moves,success_rate|all] [-out dir]
//	      [-name sweep] [-resume] [-shard i/n] [-ascii] [-quiet]
//	sweep -spec campaign.json [-out dir] [-name sweep] ...
//	sweep -merge shard1.json shard2.json ... [-out dir] [-name merged]
//
// A spec file is the JSON form of sim.CampaignSpec and replaces the
// dimension flags; workload parameters ({"kind": "churn", "every": 5})
// are available only there — the -workloads flag names bare kinds.
// Results are bit-identical for any -workers value.
//
// -resume merges into an existing manifest: every (group, N) cell
// already present is skipped, freshly run cells are added, and the
// merged manifest plus its metric tables are rewritten. Manifests are
// written on successful completion, so -resume grows a campaign in
// stages: run a narrow spec first, then rerun with added spare counts,
// schemes, grids, or workloads and only the new cells compute. The
// seed, replicate count, and pass-through trial parameters must match
// the prior manifest's; cells of dimension values the current spec no
// longer lists are dropped from the merged output.
//
// -shard i/n runs only the i-th of n contiguous replicate blocks of
// every campaign cell (1-based), so one campaign splits across boxes:
// each box runs the same spec with its own -shard and -name, and
// because replicate seeds derive from the full range, every shard
// computes exactly the trials the unsharded campaign would. -merge
// stitches the resulting shard manifests back into one campaign
// manifest plus metric tables, validating that the shards share one
// spec and that their replicate ranges tile the full range without
// overlap or gap.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// progressMeter renders completed/total with the trial rate and an ETA
// on one self-overwriting line; on wide campaigns (more than one curve)
// it adds a per-group breakdown — completed groups out of total plus
// the cell currently being filled — so a day-long multi-dimensional run
// shows where it is, not just how much is left. Redraws are throttled
// to ~5/s so the meter never slows the worker pool; jobDone is called
// from the engine's serialized sink, so no locking is needed.
type progressMeter struct {
	w     io.Writer
	start time.Time
	last  time.Time

	done  int
	total int

	// Per-group accounting, enabled when the campaign has > 1 group.
	groupTotal map[string]int
	groupDone  map[string]int
	groupsDone int
	cur        string
}

// newProgressMeter sizes the meter for total trials; groupTotal (the
// per-group trial counts of the jobs that will actually run) enables
// the breakdown and may be nil for single-group campaigns.
func newProgressMeter(w io.Writer, total int, groupTotal map[string]int) *progressMeter {
	now := time.Now()
	p := &progressMeter{w: w, start: now, last: now, total: total}
	if len(groupTotal) > 1 {
		p.groupTotal = groupTotal
		p.groupDone = make(map[string]int, len(groupTotal))
	}
	return p
}

// jobDone records one finished trial of the given group and redraws.
func (p *progressMeter) jobDone(group string) {
	p.done++
	if p.groupTotal != nil {
		p.groupDone[group]++
		p.cur = group
		if p.groupDone[group] == p.groupTotal[group] {
			p.groupsDone++
		}
	}
	p.report()
}

func (p *progressMeter) report() {
	done, total := p.done, p.total
	now := time.Now()
	if done < total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	groups := ""
	if p.groupTotal != nil {
		groups = fmt.Sprintf("  groups %d/%d", p.groupsDone, len(p.groupTotal))
		if p.cur != "" && done < total {
			groups += fmt.Sprintf("  [%s %d/%d]", p.cur, p.groupDone[p.cur], p.groupTotal[p.cur])
		}
	}
	if done == total {
		fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s%s  in %s   \n",
			done, total, rate, groups, formatETA(now.Sub(p.start)))
		return
	}
	eta := "--"
	if rate > 0 {
		eta = formatETA(time.Duration(float64(total-done) / rate * float64(time.Second)))
	}
	fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s  ETA %s%s   ", done, total, rate, eta, groups)
}

// formatETA renders a duration as s / m+s / h+m. The duration is rounded
// to whole seconds first so boundary values roll into the larger unit
// ("60s" never appears; 59.7s renders as 1m00s).
func formatETA(d time.Duration) string {
	if d < time.Second {
		return "<1s"
	}
	s := int(d.Seconds() + 0.5)
	switch {
	case s < 60:
		return fmt.Sprintf("%ds", s)
	case s < 3600:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%dh%02dm", s/3600, s/60%60)
	}
}

// writeTables exports one CSV/gnuplot table per requested metric.
func writeTables(points []experiment.Point, metricsS, outDir, name string, replicates int, ascii bool) error {
	metrics := splitList(metricsS)
	if len(metrics) == 1 && metrics[0] == "all" {
		metrics = experiment.MetricNames(points)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		tb, err := experiment.Table(points, metric,
			fmt.Sprintf("%s: mean %s per trial (%d replicates/cell)", name, metric, replicates),
			"N", metric)
		if err != nil {
			return err
		}
		paths, err := tb.SaveAll(outDir, name+"-"+metric)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", strings.Join(paths, ", "))
		if ascii {
			fmt.Println(tb.ASCII(72, 16))
		}
	}
	return nil
}

// resumeKey identifies one aggregated campaign cell in a manifest.
type resumeKey struct {
	group string
	x     float64
}

// resumeCompatible rejects a resume whose prior manifest was produced
// under different trial physics or seeding: dimension lists may differ
// freely (extending the campaign is the point of -resume, and the
// dimensions are encoded in each point's group/X identity), but the
// seed, replicate count, and pass-through trial parameters must match —
// they change results without changing any (group, N) label, so a merge
// would silently mix incomparable points and break the paired-seed
// methodology.
func resumeCompatible(priorSpec json.RawMessage, spec sim.CampaignSpec) error {
	if len(priorSpec) == 0 {
		return nil
	}
	var prev sim.CampaignSpec
	if err := json.Unmarshal(priorSpec, &prev); err != nil {
		return fmt.Errorf("unreadable spec in manifest: %w", err)
	}
	type pinned struct {
		seed            int64
		replicates      int
		shardFirst      int
		shardCount      int
		commRange       float64
		jamRadius       float64
		adjacentHolesOK bool
		arInitProb      float64
		arMaxHops       int
	}
	pin := func(s sim.CampaignSpec) pinned {
		s = s.Normalized()
		// Resolve trial-level defaults an explicit spec may spell out,
		// so "comm_range: 10" and an omitted comm_range compare equal.
		if s.CommRange == 0 {
			s.CommRange = sim.PaperCommRange
		}
		return pinned{
			seed:            s.BaseSeed,
			replicates:      s.Replicates,
			shardFirst:      s.ShardFirst,
			shardCount:      s.ShardCount,
			commRange:       s.CommRange,
			jamRadius:       s.JamRadius,
			adjacentHolesOK: s.AdjacentHolesOK,
			arInitProb:      s.ARInitProb,
			arMaxHops:       s.ARMaxHops,
		}
	}
	if a, b := pin(prev), pin(spec); a != b {
		return fmt.Errorf("produced with %+v, current campaign has %+v; "+
			"rerun with matching parameters or a fresh -name", a, b)
	}
	return nil
}

// mergePoints combines the retained points of a prior manifest with the
// freshly computed ones and restores the canonical (group, X) order, so
// a resumed manifest is indistinguishable from a single-run one. The
// resume filter guarantees the two sets are disjoint.
func mergePoints(prior, fresh []experiment.Point) []experiment.Point {
	merged := make([]experiment.Point, 0, len(prior)+len(fresh))
	merged = append(merged, prior...)
	merged = append(merged, fresh...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Group != merged[j].Group {
			return merged[i].Group < merged[j].Group
		}
		return merged[i].X < merged[j].X
	})
	return merged
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSchemes(s string) ([]sim.SchemeKind, error) {
	var out []sim.SchemeKind
	for _, f := range splitList(s) {
		k, err := sim.ParseSchemeKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseGrids(s string) ([]sim.GridSize, error) {
	var out []sim.GridSize
	for _, f := range splitList(s) {
		g, err := sim.ParseGridSize(f)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func parseFailures(s string) ([]sim.FailureMode, error) {
	var out []sim.FailureMode
	for _, f := range splitList(s) {
		m, err := sim.ParseFailureMode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseWorkloads(s string) ([]sim.WorkloadSpec, error) {
	var out []sim.WorkloadSpec
	for _, f := range splitList(s) {
		spec := sim.WorkloadSpec{Kind: strings.ToLower(f)}
		if _, err := sim.BuildWorkload(spec); err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseRunners(s string) ([]sim.RunnerKind, error) {
	var out []sim.RunnerKind
	for _, f := range splitList(s) {
		r, err := sim.ParseRunnerKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// parseShard resolves "-shard i/n" (1-based) into the contiguous
// replicate block [first, first+count) of shard i when replicates are
// split as evenly as possible across n shards (the first replicates%n
// shards get one extra).
func parseShard(s string, replicates int) (first, count int, err error) {
	is, ns, ok := strings.Cut(strings.TrimSpace(s), "/")
	i, errI := strconv.Atoi(is)
	n, errN := strconv.Atoi(ns)
	if !ok || errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n, e.g. 2/4)", s)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("shard %d/%d outside 1..n", i, n)
	}
	if n > replicates {
		return 0, 0, fmt.Errorf("cannot split %d replicates into %d shards", replicates, n)
	}
	base, rem := replicates/n, replicates%n
	first = (i-1)*base + min(i-1, rem)
	count = base
	if i <= rem {
		count++
	}
	return first, count, nil
}

// runMerge stitches shard manifests (same spec, disjoint replicate
// ranges produced with -shard) into one campaign manifest plus metric
// tables. Overlapping or gapped ranges, diverging specs, and asymmetric
// point sets all fail loudly — a silent bad merge would corrupt the
// paired-seed methodology the campaign layer guarantees.
func runMerge(paths []string, outDir, name, metricsS string, ascii bool) error {
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs at least two shard manifests, got %d", len(paths))
	}
	type shard struct {
		path     string
		spec     sim.CampaignSpec
		manifest experiment.Manifest
	}
	shards := make([]shard, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var m experiment.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("shard manifest %s: %w", path, err)
		}
		var spec sim.CampaignSpec
		if err := json.Unmarshal(m.Spec, &spec); err != nil {
			return fmt.Errorf("shard manifest %s: unreadable spec: %w", path, err)
		}
		spec = spec.Normalized()
		if spec.ShardCount == 0 {
			return fmt.Errorf("%s is not a shard manifest (no shard range in its spec)", path)
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("shard manifest %s: %w", path, err)
		}
		shards = append(shards, shard{path: path, spec: spec, manifest: m})
	}

	// All shards must be the same campaign apart from the shard range
	// (and execution metadata).
	common := func(s sim.CampaignSpec) ([]byte, error) {
		s.ShardFirst, s.ShardCount, s.Workers, s.FreshBuild = 0, 0, 0, false
		return json.Marshal(s)
	}
	ref, err := common(shards[0].spec)
	if err != nil {
		return err
	}
	for _, sh := range shards[1:] {
		got, err := common(sh.spec)
		if err != nil {
			return err
		}
		if string(got) != string(ref) {
			return fmt.Errorf("%s and %s were produced by different campaign specs; "+
				"shards must share everything but the shard range", shards[0].path, sh.path)
		}
	}

	// The ranges must tile [0, Replicates) exactly: merge in replicate
	// order, rejecting overlap, gaps, and missing shards.
	sort.Slice(shards, func(i, j int) bool { return shards[i].spec.ShardFirst < shards[j].spec.ShardFirst })
	next := 0
	pointSets := make([][]experiment.Point, 0, len(shards))
	jobs := 0
	for _, sh := range shards {
		switch {
		case sh.spec.ShardFirst > next:
			return fmt.Errorf("replicates [%d, %d) missing: no shard covers them", next, sh.spec.ShardFirst)
		case sh.spec.ShardFirst < next:
			return fmt.Errorf("%s overlaps the preceding shard at replicate %d", sh.path, sh.spec.ShardFirst)
		}
		next += sh.spec.ShardCount
		pointSets = append(pointSets, sh.manifest.Points)
		jobs += sh.manifest.Jobs
	}
	if next != shards[0].spec.Replicates {
		return fmt.Errorf("replicates [%d, %d) missing: no shard covers them", next, shards[0].spec.Replicates)
	}

	points, err := experiment.MergeShardPoints(pointSets...)
	if err != nil {
		return err
	}
	mergedSpec := shards[0].spec
	mergedSpec.ShardFirst, mergedSpec.ShardCount, mergedSpec.Workers, mergedSpec.FreshBuild = 0, 0, 0, false
	manifest, err := experiment.NewManifest(name, mergedSpec, jobs, 0, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(outDir)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d shards into %s (%d jobs, %d points)\n", len(shards), path, jobs, len(points))
	return writeTables(points, metricsS, outDir, name, mergedSpec.Replicates, ascii)
}

func loadSpec(path string) (sim.CampaignSpec, error) {
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON campaign spec file (replaces the dimension flags)")
		schemesS   = fs.String("schemes", "SR,AR", "comma-separated schemes: SR, SR+shortcut, AR")
		gridsS     = fs.String("grids", "16x16", "comma-separated grid sizes, CxR")
		sparesS    = fs.String("spares", "", "comma-separated spare counts N (default: the paper's x axis)")
		holesS     = fs.String("holes", "1", "comma-separated simultaneous hole counts")
		failuresS  = fs.String("failures", "holes", "comma-separated legacy damage models: holes, jam")
		workloadsS = fs.String("workloads", "", "comma-separated workload kinds: "+strings.Join(sim.WorkloadKinds(), ", ")+" (parameters via -spec)")
		runnersS   = fs.String("runners", "", "comma-separated trial runners: sync, async (default sync)")
		resume     = fs.Bool("resume", false, "skip (group, N) cells already in the output manifest and merge new results into it")
		shardS     = fs.String("shard", "", "replicate shard i/n: run only the i-th of n contiguous replicate blocks (stitch with -merge)")
		merge      = fs.Bool("merge", false, "merge the shard manifests given as arguments into one campaign manifest instead of running trials")
		replicates = fs.Int("replicates", 20, "trials per campaign cell")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
		jamRadius  = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		adjacent   = fs.Bool("adjacent", false, "allow adjacent hole cells")
		metricsS   = fs.String("metrics", "moves,distance,success_rate,recovered", "metrics to export as tables, or \"all\"")
		outDir     = fs.String("out", "out", "output directory for artifacts")
		name       = fs.String("name", "sweep", "campaign name (artifact base name)")
		ascii      = fs.Bool("ascii", false, "print ASCII previews of exported tables")
		quiet      = fs.Bool("quiet", false, "suppress the progress meter")
	)
	// Collect positional arguments (the -merge shard manifests) while
	// allowing flags to follow them: the flag package stops at the first
	// positional, so re-parse the remainder until everything is consumed
	// ("sweep -merge a.json b.json -out dir" works either way around).
	var positional []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		// A lone "-" is a positional too (flag.Parse stops at it without
		// consuming it); collecting it keeps this loop making progress.
		for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}

	if *merge {
		// Only output-shaping flags combine with -merge; any campaign
		// dimension flag would be silently ignored, so reject it instead.
		allowed := map[string]bool{"merge": true, "out": true, "name": true, "metrics": true, "ascii": true}
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("-merge takes shard manifests as arguments and no campaign flags (got %s)",
				strings.Join(stray, ", "))
		}
		return runMerge(positional, *outDir, *name, *metricsS, *ascii)
	}
	if len(positional) > 0 {
		return fmt.Errorf("unexpected arguments %v (only -merge takes manifests)", positional)
	}

	var spec sim.CampaignSpec
	if *specPath != "" {
		loaded, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		failuresFlagSet := false
		fs.Visit(func(f *flag.Flag) { failuresFlagSet = failuresFlagSet || f.Name == "failures" })
		var err error
		if spec.Schemes, err = parseSchemes(*schemesS); err != nil {
			return err
		}
		if spec.Grids, err = parseGrids(*gridsS); err != nil {
			return err
		}
		if spec.Spares, err = parseInts(*sparesS); err != nil {
			return err
		}
		if spec.Holes, err = parseInts(*holesS); err != nil {
			return err
		}
		if *workloadsS != "" {
			if failuresFlagSet {
				return fmt.Errorf("set -workloads or -failures, not both")
			}
			if spec.Workloads, err = parseWorkloads(*workloadsS); err != nil {
				return err
			}
		} else if spec.Failures, err = parseFailures(*failuresS); err != nil {
			return err
		}
		if spec.Runners, err = parseRunners(*runnersS); err != nil {
			return err
		}
		spec.Replicates = *replicates
		spec.BaseSeed = *seed
		spec.JamRadius = *jamRadius
		spec.AdjacentHolesOK = *adjacent
	}
	// Workers only changes wall clock, never results: an explicit flag
	// beats a value pinned in the spec file.
	workersFlagSet := false
	fs.Visit(func(f *flag.Flag) { workersFlagSet = workersFlagSet || f.Name == "workers" })
	if workersFlagSet || spec.Workers == 0 {
		spec.Workers = *workers
	}
	spec = spec.Normalized()
	if *shardS != "" {
		if spec.ShardCount > 0 {
			return fmt.Errorf("the spec file already pins a shard range; drop -shard or the spec fields")
		}
		first, count, err := parseShard(*shardS, spec.Replicates)
		if err != nil {
			return err
		}
		spec.ShardFirst, spec.ShardCount = first, count
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	// -resume: load the existing manifest (if any) and mark its
	// aggregated (group, N) cells as done, so only missing cells run.
	manifestPath := filepath.Join(*outDir, *name+".json")
	var priorPoints []experiment.Point
	done := make(map[resumeKey]bool)
	if *resume {
		data, err := os.ReadFile(manifestPath)
		switch {
		case err == nil:
			var prior experiment.Manifest
			if err := json.Unmarshal(data, &prior); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			if err := resumeCompatible(prior.Spec, spec); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			// Only prior cells inside the current job space count: they
			// are skipped and retained. Orphans (cells of a dimension
			// value the current spec dropped) are discarded so the
			// written manifest stays consistent with its recorded spec.
			current := make(map[resumeKey]bool)
			js := spec.JobSpace()
			for i := 0; i < js.Len(); i++ {
				j := js.At(i)
				current[resumeKey{j.Group(), float64(j.Spares)}] = true
			}
			orphans := 0
			for _, p := range prior.Points {
				if !current[resumeKey{p.Group, p.X}] {
					orphans++
					continue
				}
				priorPoints = append(priorPoints, p)
				done[resumeKey{p.Group, p.X}] = true
			}
			if orphans > 0 {
				fmt.Printf("resume: dropping %d cells of %s outside the current spec\n",
					orphans, manifestPath)
			}
		case os.IsNotExist(err):
			// Nothing to resume from; run the full campaign.
		default:
			return err
		}
	}
	var keep func(sim.TrialJob) bool
	if len(done) > 0 {
		keep = func(j sim.TrialJob) bool {
			return !done[resumeKey{j.Group(), float64(j.Spares)}]
		}
	}

	// Count the jobs that will actually run (after the shard and resume
	// filters) and their per-group totals for the meter's breakdown.
	// ExecutedJobs applies exactly the filter RunCampaignSubset executes,
	// so the meter's total always matches the delivered stream.
	executed := 0
	groupTotal := make(map[string]int)
	spec.ExecutedJobs(keep, func(j sim.TrialJob) {
		executed++
		groupTotal[j.Group()]++
	})
	totalJobs := spec.NumJobs()
	if spec.ShardCount > 0 {
		totalJobs = executed // a shard manifest records the trials it ran
	}
	opts := experiment.Options{Workers: spec.Workers}
	var meter *progressMeter
	if !*quiet {
		meter = newProgressMeter(os.Stderr, executed, groupTotal)
	}
	// Trials stream into online per-(group, N) accumulators: campaign
	// memory is O(groups), not O(trials). The meter rides the same
	// ordered sink, so its per-group counts advance deterministically.
	acc := experiment.NewAccumulator()
	err := sim.RunCampaignSubset(context.Background(), spec, opts, keep,
		func(j sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			if meter != nil {
				meter.jobDone(j.Group())
			}
			return nil
		})
	if err != nil {
		return err
	}
	points := acc.Points()
	if len(done) > 0 {
		fmt.Printf("resume: %d cells already in %s, ran %d new trials\n",
			len(done), manifestPath, acc.Samples())
		points = mergePoints(priorPoints, points)
	}

	manifest, err := experiment.NewManifest(*name, spec, totalJobs, opts.Workers, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(*outDir)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d jobs, %d points)\n", path, totalJobs, len(points))

	if err := writeTables(points, *metricsS, *outDir, *name, spec.Replicates, *ascii); err != nil {
		return err
	}

	for _, p := range points {
		fmt.Printf("%-24s N=%-5g moves=%6.1f±%-5.1f dist=%7.1f success=%5.1f%% recovered=%5.1f%%\n",
			p.Group, p.X,
			p.Metrics["moves"].Mean, p.Metrics["moves"].CI95,
			p.Metrics["distance"].Mean,
			p.Metrics["success_rate"].Mean,
			100*p.Metrics["recovered"].Mean)
	}
	return nil
}
