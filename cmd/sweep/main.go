// Command sweep runs a multi-dimensional Monte-Carlo campaign on the
// parallel experiment engine: the cross product of control schemes, grid
// sizes, spare counts, hole counts, workloads, and runners, replicated
// and aggregated into mean/CI95 summaries. It writes a JSON manifest
// plus one CSV/gnuplot table per exported metric.
//
// Usage:
//
//	sweep [-schemes SR,AR] [-grids 16x16] [-spares 10,55,200]
//	      [-holes 1] [-workloads holes,churn | -failures holes,jam]
//	      [-runners sync,async] [-replicates 20] [-seed s]
//	      [-workers w] [-metrics moves,success_rate|all] [-out dir]
//	      [-name sweep] [-resume] [-ascii] [-quiet]
//	sweep -spec campaign.json [-out dir] [-name sweep] ...
//
// A spec file is the JSON form of sim.CampaignSpec and replaces the
// dimension flags; workload parameters ({"kind": "churn", "every": 5})
// are available only there — the -workloads flag names bare kinds.
// Results are bit-identical for any -workers value.
//
// -resume merges into an existing manifest: every (group, N) cell
// already present is skipped, freshly run cells are added, and the
// merged manifest plus its metric tables are rewritten. Manifests are
// written on successful completion, so -resume grows a campaign in
// stages: run a narrow spec first, then rerun with added spare counts,
// schemes, grids, or workloads and only the new cells compute. The
// seed, replicate count, and pass-through trial parameters must match
// the prior manifest's; cells of dimension values the current spec no
// longer lists are dropped from the merged output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// progressMeter renders completed/total with the trial rate and an ETA on
// one self-overwriting line. Redraws are throttled to ~5/s so the meter
// never slows the worker pool; report is called from the engine's
// serialized Progress hook, so no locking is needed.
type progressMeter struct {
	w     io.Writer
	start time.Time
	last  time.Time
}

func newProgressMeter(w io.Writer) *progressMeter {
	now := time.Now()
	return &progressMeter{w: w, start: now, last: now}
}

func (p *progressMeter) report(done, total int) {
	now := time.Now()
	if done < total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "--"
	if rate > 0 && done < total {
		eta = formatETA(time.Duration(float64(total-done) / rate * float64(time.Second)))
	}
	fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s  ETA %s   ", done, total, rate, eta)
	if done == total {
		fmt.Fprintf(p.w, "\r%d/%d trials  %.0f trials/s  in %s   \n",
			done, total, rate, formatETA(now.Sub(p.start)))
	}
}

// formatETA renders a duration as s / m+s / h+m. The duration is rounded
// to whole seconds first so boundary values roll into the larger unit
// ("60s" never appears; 59.7s renders as 1m00s).
func formatETA(d time.Duration) string {
	if d < time.Second {
		return "<1s"
	}
	s := int(d.Seconds() + 0.5)
	switch {
	case s < 60:
		return fmt.Sprintf("%ds", s)
	case s < 3600:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%dh%02dm", s/3600, s/60%60)
	}
}

// resumeKey identifies one aggregated campaign cell in a manifest.
type resumeKey struct {
	group string
	x     float64
}

// resumeCompatible rejects a resume whose prior manifest was produced
// under different trial physics or seeding: dimension lists may differ
// freely (extending the campaign is the point of -resume, and the
// dimensions are encoded in each point's group/X identity), but the
// seed, replicate count, and pass-through trial parameters must match —
// they change results without changing any (group, N) label, so a merge
// would silently mix incomparable points and break the paired-seed
// methodology.
func resumeCompatible(priorSpec json.RawMessage, spec sim.CampaignSpec) error {
	if len(priorSpec) == 0 {
		return nil
	}
	var prev sim.CampaignSpec
	if err := json.Unmarshal(priorSpec, &prev); err != nil {
		return fmt.Errorf("unreadable spec in manifest: %w", err)
	}
	type pinned struct {
		seed            int64
		replicates      int
		commRange       float64
		jamRadius       float64
		adjacentHolesOK bool
		arInitProb      float64
		arMaxHops       int
	}
	pin := func(s sim.CampaignSpec) pinned {
		s = s.Normalized()
		// Resolve trial-level defaults an explicit spec may spell out,
		// so "comm_range: 10" and an omitted comm_range compare equal.
		if s.CommRange == 0 {
			s.CommRange = sim.PaperCommRange
		}
		return pinned{
			seed:            s.BaseSeed,
			replicates:      s.Replicates,
			commRange:       s.CommRange,
			jamRadius:       s.JamRadius,
			adjacentHolesOK: s.AdjacentHolesOK,
			arInitProb:      s.ARInitProb,
			arMaxHops:       s.ARMaxHops,
		}
	}
	if a, b := pin(prev), pin(spec); a != b {
		return fmt.Errorf("produced with %+v, current campaign has %+v; "+
			"rerun with matching parameters or a fresh -name", a, b)
	}
	return nil
}

// mergePoints combines the retained points of a prior manifest with the
// freshly computed ones and restores the canonical (group, X) order, so
// a resumed manifest is indistinguishable from a single-run one. The
// resume filter guarantees the two sets are disjoint.
func mergePoints(prior, fresh []experiment.Point) []experiment.Point {
	merged := make([]experiment.Point, 0, len(prior)+len(fresh))
	merged = append(merged, prior...)
	merged = append(merged, fresh...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Group != merged[j].Group {
			return merged[i].Group < merged[j].Group
		}
		return merged[i].X < merged[j].X
	})
	return merged
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSchemes(s string) ([]sim.SchemeKind, error) {
	var out []sim.SchemeKind
	for _, f := range splitList(s) {
		k, err := sim.ParseSchemeKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseGrids(s string) ([]sim.GridSize, error) {
	var out []sim.GridSize
	for _, f := range splitList(s) {
		g, err := sim.ParseGridSize(f)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func parseFailures(s string) ([]sim.FailureMode, error) {
	var out []sim.FailureMode
	for _, f := range splitList(s) {
		m, err := sim.ParseFailureMode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseWorkloads(s string) ([]sim.WorkloadSpec, error) {
	var out []sim.WorkloadSpec
	for _, f := range splitList(s) {
		spec := sim.WorkloadSpec{Kind: strings.ToLower(f)}
		if _, err := sim.BuildWorkload(spec); err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseRunners(s string) ([]sim.RunnerKind, error) {
	var out []sim.RunnerKind
	for _, f := range splitList(s) {
		r, err := sim.ParseRunnerKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func loadSpec(path string) (sim.CampaignSpec, error) {
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON campaign spec file (replaces the dimension flags)")
		schemesS   = fs.String("schemes", "SR,AR", "comma-separated schemes: SR, SR+shortcut, AR")
		gridsS     = fs.String("grids", "16x16", "comma-separated grid sizes, CxR")
		sparesS    = fs.String("spares", "", "comma-separated spare counts N (default: the paper's x axis)")
		holesS     = fs.String("holes", "1", "comma-separated simultaneous hole counts")
		failuresS  = fs.String("failures", "holes", "comma-separated legacy damage models: holes, jam")
		workloadsS = fs.String("workloads", "", "comma-separated workload kinds: "+strings.Join(sim.WorkloadKinds(), ", ")+" (parameters via -spec)")
		runnersS   = fs.String("runners", "", "comma-separated trial runners: sync, async (default sync)")
		resume     = fs.Bool("resume", false, "skip (group, N) cells already in the output manifest and merge new results into it")
		replicates = fs.Int("replicates", 20, "trials per campaign cell")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
		jamRadius  = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		adjacent   = fs.Bool("adjacent", false, "allow adjacent hole cells")
		metricsS   = fs.String("metrics", "moves,distance,success_rate,recovered", "metrics to export as tables, or \"all\"")
		outDir     = fs.String("out", "out", "output directory for artifacts")
		name       = fs.String("name", "sweep", "campaign name (artifact base name)")
		ascii      = fs.Bool("ascii", false, "print ASCII previews of exported tables")
		quiet      = fs.Bool("quiet", false, "suppress the progress meter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec sim.CampaignSpec
	if *specPath != "" {
		loaded, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		failuresFlagSet := false
		fs.Visit(func(f *flag.Flag) { failuresFlagSet = failuresFlagSet || f.Name == "failures" })
		var err error
		if spec.Schemes, err = parseSchemes(*schemesS); err != nil {
			return err
		}
		if spec.Grids, err = parseGrids(*gridsS); err != nil {
			return err
		}
		if spec.Spares, err = parseInts(*sparesS); err != nil {
			return err
		}
		if spec.Holes, err = parseInts(*holesS); err != nil {
			return err
		}
		if *workloadsS != "" {
			if failuresFlagSet {
				return fmt.Errorf("set -workloads or -failures, not both")
			}
			if spec.Workloads, err = parseWorkloads(*workloadsS); err != nil {
				return err
			}
		} else if spec.Failures, err = parseFailures(*failuresS); err != nil {
			return err
		}
		if spec.Runners, err = parseRunners(*runnersS); err != nil {
			return err
		}
		spec.Replicates = *replicates
		spec.BaseSeed = *seed
		spec.JamRadius = *jamRadius
		spec.AdjacentHolesOK = *adjacent
	}
	// Workers only changes wall clock, never results: an explicit flag
	// beats a value pinned in the spec file.
	workersFlagSet := false
	fs.Visit(func(f *flag.Flag) { workersFlagSet = workersFlagSet || f.Name == "workers" })
	if workersFlagSet || spec.Workers == 0 {
		spec.Workers = *workers
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return err
	}

	// -resume: load the existing manifest (if any) and mark its
	// aggregated (group, N) cells as done, so only missing cells run.
	manifestPath := filepath.Join(*outDir, *name+".json")
	var priorPoints []experiment.Point
	done := make(map[resumeKey]bool)
	if *resume {
		data, err := os.ReadFile(manifestPath)
		switch {
		case err == nil:
			var prior experiment.Manifest
			if err := json.Unmarshal(data, &prior); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			if err := resumeCompatible(prior.Spec, spec); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			// Only prior cells inside the current job space count: they
			// are skipped and retained. Orphans (cells of a dimension
			// value the current spec dropped) are discarded so the
			// written manifest stays consistent with its recorded spec.
			current := make(map[resumeKey]bool)
			js := spec.JobSpace()
			for i := 0; i < js.Len(); i++ {
				j := js.At(i)
				current[resumeKey{j.Group(), float64(j.Spares)}] = true
			}
			orphans := 0
			for _, p := range prior.Points {
				if !current[resumeKey{p.Group, p.X}] {
					orphans++
					continue
				}
				priorPoints = append(priorPoints, p)
				done[resumeKey{p.Group, p.X}] = true
			}
			if orphans > 0 {
				fmt.Printf("resume: dropping %d cells of %s outside the current spec\n",
					orphans, manifestPath)
			}
		case os.IsNotExist(err):
			// Nothing to resume from; run the full campaign.
		default:
			return err
		}
	}
	var keep func(sim.TrialJob) bool
	if len(done) > 0 {
		keep = func(j sim.TrialJob) bool {
			return !done[resumeKey{j.Group(), float64(j.Spares)}]
		}
	}

	totalJobs := spec.NumJobs()
	opts := experiment.Options{Workers: spec.Workers}
	if !*quiet {
		opts.Progress = newProgressMeter(os.Stderr).report
	}
	// Trials stream into online per-(group, N) accumulators: campaign
	// memory is O(groups), not O(trials).
	acc := experiment.NewAccumulator()
	err := sim.RunCampaignSubset(context.Background(), spec, opts, keep,
		func(_ sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			return nil
		})
	if err != nil {
		return err
	}
	points := acc.Points()
	if len(done) > 0 {
		fmt.Printf("resume: %d cells already in %s, ran %d new trials\n",
			len(done), manifestPath, acc.Samples())
		points = mergePoints(priorPoints, points)
	}

	manifest, err := experiment.NewManifest(*name, spec, totalJobs, opts.Workers, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(*outDir)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d jobs, %d points)\n", path, totalJobs, len(points))

	metrics := splitList(*metricsS)
	if len(metrics) == 1 && metrics[0] == "all" {
		metrics = experiment.MetricNames(points)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		tb, err := experiment.Table(points, metric,
			fmt.Sprintf("%s: mean %s per trial (%d replicates/cell)", *name, metric, spec.Replicates),
			"N", metric)
		if err != nil {
			return err
		}
		paths, err := tb.SaveAll(*outDir, *name+"-"+metric)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", strings.Join(paths, ", "))
		if *ascii {
			fmt.Println(tb.ASCII(72, 16))
		}
	}

	for _, p := range points {
		fmt.Printf("%-24s N=%-5g moves=%6.1f±%-5.1f dist=%7.1f success=%5.1f%% recovered=%5.1f%%\n",
			p.Group, p.X,
			p.Metrics["moves"].Mean, p.Metrics["moves"].CI95,
			p.Metrics["distance"].Mean,
			p.Metrics["success_rate"].Mean,
			100*p.Metrics["recovered"].Mean)
	}
	return nil
}
