// Command sweep runs a multi-dimensional Monte-Carlo campaign on the
// parallel experiment engine: the cross product of control schemes, grid
// sizes, spare counts, hole counts, workloads, and runners, replicated
// and aggregated into mean/CI95 summaries. It writes a JSON manifest
// plus one CSV/gnuplot table per exported metric.
//
// Usage:
//
//	sweep [-schemes SR,AR] [-grids 16x16] [-spares 10,55,200]
//	      [-holes 1] [-workloads holes,churn | -failures holes,jam]
//	      [-runners sync,async] [-replicates 20] [-seed s]
//	      [-workers w] [-metrics moves,success_rate|all] [-out dir]
//	      [-name sweep] [-resume] [-shard i/n] [-checkpoint]
//	      [-progress meter|json|none] [-ascii] [-quiet]
//	      [-dash addr [-pprof] [-dash-linger d]] [-ledger path|none]
//	      [-if-cached store-dir]
//	sweep -spec campaign.json [-out dir] [-name sweep] ...
//	sweep -merge shard1.json shard2.json ... [-out dir] [-name merged]
//	sweep -dispatch n [-exec "ssh host{slot} --"] [-lease-timeout d]
//	      [-max-retries r] [campaign flags ...]
//	sweep -fleet inventory.txt [-lease-timeout d] [-max-retries r] ...
//
// A spec file is the JSON form of sim.CampaignSpec and replaces the
// dimension flags; workload parameters ({"kind": "churn", "every": 5})
// are available only there — the -workloads flag names bare kinds.
// Results are bit-identical for any -workers value.
//
// -resume merges into an existing manifest: every (group, N) cell
// already present is skipped, freshly run cells are added, and the
// merged manifest plus its metric tables are rewritten. Manifests are
// written on successful completion, so -resume grows a campaign in
// stages: run a narrow spec first, then rerun with added spare counts,
// schemes, grids, or workloads and only the new cells compute. The
// seed, replicate count, and pass-through trial parameters must match
// the prior manifest's; cells of dimension values the current spec no
// longer lists are dropped from the merged output.
//
// -shard i/n runs only the i-th of n contiguous replicate blocks of
// every campaign cell (1-based), so one campaign splits across boxes:
// each box runs the same spec with its own -shard and -name, and
// because replicate seeds derive from the full range, every shard
// computes exactly the trials the unsharded campaign would. -merge
// stitches the resulting shard manifests back into one campaign
// manifest plus metric tables, validating that the shards share one
// spec and that their replicate ranges tile the full range without
// overlap, gap, or duplicated shards. A single manifest covering the
// whole range (-shard 1/1) merges degenerately into the unsharded
// manifest. Merged medians cannot be recomputed from shard summaries;
// they are count-weighted estimates marked "median_approx" in the
// manifest.
//
// -dispatch n does all of that automatically, and fault-tolerantly: it
// splits the campaign's replicate range into blocks (two per slot by
// default) fed to n worker slots from a lease-based work queue. A slot
// leasing a block runs one supervised worker subprocess (the current
// binary by default; -exec prefixes the command, with "{slot}" replaced
// by the slot number, so "ssh box{slot} --" reaches remote machines
// sharing the -out directory; -fleet names an inventory file giving
// every slot its own prefix). Progress events on the worker's stdout
// renew the lease: a worker silent for -lease-timeout is killed and its
// block re-queued, failed blocks are retried with -resume from their
// checkpoint manifests after a jittered backoff (-max-retries caps
// relaunches per block), idle slots steal speculative duplicates of
// straggling blocks (first completion wins; duplicates are
// byte-identical by determinism), and slots that keep failing are
// retired so a dead box shrinks the fleet instead of stalling it. The
// driver folds the workers' progress into one live fleet meter and
// merges the shard manifests into the final campaign manifest.
// SIGINT/SIGTERM drain gracefully: workers flush checkpoints, the
// ledger records the abort, and a -resume rerun picks up every
// surviving checkpoint. The WSNSWEEP_CHAOS harness (see chaos.go)
// injects worker faults to test all of this end to end.
//
// -if-cached names a sweepd manifest store (internal/sweepd): when the
// store already holds a manifest for this spec's hash — execution-only
// fields like -workers never affect the hash — the run is skipped and
// the cached manifest's path prints on stdout; otherwise the campaign
// runs and its manifest is installed, so scripts and CI get exactly the
// dedupe the daemon performs. The spec must be unsharded (results are
// byte-identical at any worker count, so a cached manifest answers for
// every execution layout).
//
// -progress selects the progress channel: "meter" is the human line on
// stderr, "json" emits newline-delimited experiment.Progress events
// ({"done":..,"total":..,"group":..,"group_done":..}) on stdout — the
// protocol dispatch supervisors consume; combined with -dispatch it
// emits the merged fleet's progress instead, so a supervisor of
// supervisors composes — and "none" is silent. -checkpoint rewrites the
// manifest (atomically) every time a campaign cell completes, so a
// killed run leaves a partial manifest a later -resume picks up; the
// dispatch driver enables it for every worker.
//
// Observability: -dash addr serves the live telemetry dashboard
// (internal/telemetry) while the campaign runs — an HTML page at /, the
// snapshot stream at /events (SSE, or NDJSON with ?format=ndjson),
// liveness at /healthz, and net/http/pprof under -pprof. -dash-linger
// keeps it serving after completion so a human can see the final state.
// Every run appends one record to the run ledger when it ends —
// completed, failed, or aborted, the status says which
// (<out>/ledger.ndjson, or -ledger path; -ledger none disables), the
// NDJSON history cmd/runlog queries. Structured logs go to stderr via
// log/slog; WSNSWEEP_LOG sets the level and WSNSWEEP_LOG_FORMAT=json
// makes them machine-parseable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wsncover/internal/dispatch"
	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/sweepd"
	"wsncover/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// progressOut is where -progress=json events go. It is the process
// stdout — a dispatch supervisor reads the worker's stdout — and a
// variable only so tests can capture the stream.
var progressOut io.Writer = os.Stdout

// jsonProgress emits the newline-delimited progress protocol
// (experiment.Progress events) a dispatch supervisor consumes. The
// initial and final events always go out — the supervisor needs the
// totals up front and the completion for certain — and intermediate
// events are throttled like the human meter so a fast campaign never
// bottlenecks on pipe writes. Each event carries the current group's
// completed-trial count (GroupDone), and a group finishing forces an
// event, so the supervisor's per-group ledger sees every group reach
// its final count even under throttling.
type jsonProgress struct {
	w          io.Writer
	total      int
	last       time.Time
	groupTotal map[string]int
	groupDone  map[string]int
}

func newJSONProgress(w io.Writer, total int, groupTotal map[string]int) *jsonProgress {
	e := &jsonProgress{
		w: w, total: total,
		groupTotal: groupTotal,
		groupDone:  make(map[string]int, len(groupTotal)),
	}
	e.w.Write(experiment.Progress{Done: 0, Total: e.total}.MarshalLine())
	return e
}

func (e *jsonProgress) emit(done int, group string) {
	e.groupDone[group]++
	boundary := e.groupDone[group] == e.groupTotal[group]
	now := time.Now()
	if done != e.total && !boundary && now.Sub(e.last) < 200*time.Millisecond {
		return
	}
	e.last = now
	e.w.Write(experiment.Progress{
		Done: done, Total: e.total,
		Group: group, GroupDone: e.groupDone[group],
	}.MarshalLine())
}

// fleetJSON re-emits a dispatch fleet's merged progress as the same
// NDJSON protocol the workers speak — "-dispatch n -progress=json"
// composes: a supervisor of this process parses the stream exactly as
// this process parses its workers'. The initial full-total event is
// written by the caller before the fleet starts; terminal snapshots
// always go out.
type fleetJSON struct {
	w    io.Writer
	last time.Time
}

func (e *fleetJSON) update(snap dispatch.FleetSnapshot) {
	now := time.Now()
	if !snap.Terminal() && now.Sub(e.last) < 200*time.Millisecond {
		return
	}
	e.last = now
	e.w.Write(snap.Fleet.MarshalLine())
}

// checkpointer rewrites the manifest after every completed campaign
// cell, atomically (tmp + rename), so a run killed mid-campaign leaves
// a valid partial manifest at the real path for -resume to pick up.
// Only fully completed (group, N) cells are written: -resume skips
// whole cells, so a partial cell's trials would be rerun anyway.
type checkpointer struct {
	path      string // final manifest path; checkpoints land here atomically
	name      string
	spec      sim.CampaignSpec
	prior     []experiment.Point
	priorJobs int
	workers   int
	acc       *experiment.Accumulator
	cellTotal map[resumeKey]int
	cellDone  map[resumeKey]int
	completed map[resumeKey]bool
	doneJobs  int
	log       *slog.Logger
}

// trialDone records one finished trial; when its cell completes, the
// manifest checkpoint is rewritten.
func (c *checkpointer) trialDone(k resumeKey) error {
	c.cellDone[k]++
	if c.cellDone[k] < c.cellTotal[k] {
		return nil
	}
	c.completed[k] = true
	c.doneJobs += c.cellTotal[k]
	if err := c.write(); err != nil {
		return err
	}
	c.log.Debug("checkpoint written",
		"manifest", c.path, "group", k.group, "x", k.x,
		"cells", len(c.completed), "done_jobs", c.doneJobs)
	return nil
}

func (c *checkpointer) write() error {
	pts := make([]experiment.Point, 0, len(c.completed))
	for _, p := range c.acc.Points() {
		if c.completed[resumeKey{p.Group, p.X}] {
			pts = append(pts, p)
		}
	}
	pts = mergePoints(c.prior, pts)
	manifest, err := experiment.NewManifest(c.name, c.spec, c.priorJobs+c.doneJobs, c.workers, pts)
	if err != nil {
		return err
	}
	// WriteAtomic uses a uniquely named temp file, so two attempts at the
	// same shard (a straggler and its speculative duplicate sharing the
	// out directory) never clobber each other's in-flight checkpoint.
	return manifest.WriteAtomic(c.path)
}

// dashNotify is a test hook: when set, it runs with the dashboard's
// bound address (and its hub) after the server starts and before the
// campaign does, so a test can subscribe ahead of the first event.
var dashNotify func(addr string, hub *telemetry.Hub)

// dashAddrFileEnv, when set, names a file the bound dashboard address is
// written to — the hook CI's smoke test uses to find a ":0" port.
const dashAddrFileEnv = "WSNSWEEP_DASH_ADDR_FILE"

// dashRig bundles the live-dashboard pieces -dash turns on: the hub the
// campaign publishes into, the HTTP server over it, and the publisher
// that stamps snapshots with elapsed/rate/ETA.
type dashRig struct {
	hub    *telemetry.Hub
	server *telemetry.Server
	pub    *telemetry.Publisher
	addr   string
	linger time.Duration
}

func startDash(addr string, pprof bool, linger time.Duration, logger *slog.Logger) (*dashRig, error) {
	hub := telemetry.NewHub()
	srv := telemetry.NewServer(hub)
	srv.Pprof = pprof
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, err
	}
	logger.Info("dashboard serving", "addr", bound, "url", "http://"+bound+"/", "pprof", pprof)
	if path := os.Getenv(dashAddrFileEnv); path != "" {
		if err := os.WriteFile(path, []byte(bound), 0o644); err != nil {
			srv.Close()
			return nil, err
		}
	}
	if dashNotify != nil {
		dashNotify(bound, hub)
	}
	return &dashRig{hub: hub, server: srv, pub: telemetry.NewPublisher(hub), addr: bound, linger: linger}, nil
}

// finish shuts the dashboard down; after a successful campaign it first
// lingers (-dash-linger) so a human — or a smoke test — can still read
// the final state. Nil-safe, so call sites need no -dash conditionals.
func (d *dashRig) finish(runErr error) {
	if d == nil {
		return
	}
	if runErr == nil && d.linger > 0 {
		time.Sleep(d.linger)
	}
	d.server.Close()
}

// shardViews and groupViews convert a fleet snapshot's vectors into the
// telemetry package's wire shapes — the conversion lives here because
// telemetry must not import dispatch (the dependency runs the other
// way: nothing below the command layer knows about the dashboard).
func shardViews(shards []dispatch.ShardStatus) []telemetry.ShardView {
	now := time.Now()
	out := make([]telemetry.ShardView, len(shards))
	for i, s := range shards {
		out[i] = telemetry.ShardView{
			Shard:    s.Shard,
			State:    s.State.String(),
			Done:     s.Progress.Done,
			Total:    s.Progress.Total,
			Attempts: s.Attempts,
			Slot:     s.Slot,
			Leases:   s.Leases,
			BeatAgeS: -1,
		}
		if s.Attempts > 1 {
			out[i].Retries = s.Attempts - 1
		}
		if !s.LastBeat.IsZero() {
			out[i].BeatAgeS = now.Sub(s.LastBeat).Seconds()
		}
	}
	return out
}

func groupViews(groups []dispatch.GroupProgress) []telemetry.GroupView {
	out := make([]telemetry.GroupView, len(groups))
	for i, g := range groups {
		out[i] = telemetry.GroupView{Group: g.Group, Done: g.Done, Total: g.Total}
	}
	return out
}

// fleetStats rides the dispatch progress callback and captures what the
// ledger records about a fleet run: worker relaunch counts and each
// group's active wall span (snapshot-granular — from the first snapshot
// where the group shows progress to the last where its count advanced).
type fleetStats struct {
	shards    int
	attempts  []int
	prevDone  map[string]int
	groupSpan *telemetry.GroupTimer
}

func newFleetStats() *fleetStats {
	return &fleetStats{prevDone: make(map[string]int), groupSpan: telemetry.NewGroupTimer()}
}

func (f *fleetStats) update(s dispatch.FleetSnapshot) {
	f.shards = len(s.Shards)
	if f.attempts == nil {
		f.attempts = make([]int, len(s.Shards))
	}
	for i, sh := range s.Shards {
		if i < len(f.attempts) && sh.Attempts > f.attempts[i] {
			f.attempts[i] = sh.Attempts
		}
	}
	for _, g := range s.Groups {
		if g.Done > f.prevDone[g.Group] {
			f.prevDone[g.Group] = g.Done
			f.groupSpan.Observe(g.Group)
		}
	}
}

// retries is the number of worker relaunches the fleet needed.
func (f *fleetStats) retries() int {
	n := 0
	for _, a := range f.attempts {
		if a > 1 {
			n += a - 1
		}
	}
	return n
}

// resolveLedger turns the -ledger flag into a path: the default is
// <out>/ledger.ndjson, "none" disables (empty return).
func resolveLedger(flagVal, outDir string) string {
	switch flagVal {
	case "none":
		return ""
	case "":
		return filepath.Join(outDir, "ledger.ndjson")
	}
	return flagVal
}

// installCached copies a finished manifest into the -if-cached store so
// the next run of the same spec is a hit; a nil store is a no-op.
func installCached(store *sweepd.Store, hash, manifestPath string, logger *slog.Logger) error {
	if store == nil {
		return nil
	}
	stored, err := store.Install(hash, manifestPath)
	if err != nil {
		return fmt.Errorf("installing manifest in store: %w", err)
	}
	logger.Info("manifest installed in store", "hash", hash, "path", stored)
	return nil
}

// appendLedger hashes the spec, appends the record, and logs it; a
// ledger failure is reported but never fails a completed campaign.
func appendLedger(path string, rec telemetry.Record, spec sim.CampaignSpec, logger *slog.Logger) {
	hash, err := telemetry.SpecHash(spec)
	if err != nil {
		logger.Error("ledger: hashing spec", "err", err)
		return
	}
	rec.SpecHash = hash
	if err := telemetry.AppendRecord(path, rec); err != nil {
		logger.Error("ledger append failed", "path", path, "err", err)
		return
	}
	logger.Debug("ledger appended", "path", path, "mode", rec.Mode, "spec_hash", hash)
}

// writeTables exports one CSV/gnuplot table per requested metric,
// logging to w (stdout normally, stderr when stdout carries the JSON
// progress protocol).
func writeTables(w io.Writer, points []experiment.Point, metricsS, outDir, name string, replicates int, ascii bool) error {
	metrics := splitList(metricsS)
	if len(metrics) == 1 && metrics[0] == "all" {
		metrics = experiment.MetricNames(points)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		tb, err := experiment.Table(points, metric,
			fmt.Sprintf("%s: mean %s per trial (%d replicates/cell)", name, metric, replicates),
			"N", metric)
		if err != nil {
			return err
		}
		paths, err := tb.SaveAll(outDir, name+"-"+metric)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", strings.Join(paths, ", "))
		if ascii {
			fmt.Fprintln(w, tb.ASCII(72, 16))
		}
	}
	return nil
}

// resumeKey identifies one aggregated campaign cell in a manifest.
type resumeKey struct {
	group string
	x     float64
}

// resumeCompatible rejects a resume whose prior manifest was produced
// under different trial physics or seeding: dimension lists may differ
// freely (extending the campaign is the point of -resume, and the
// dimensions are encoded in each point's group/X identity), but the
// seed, replicate count, and pass-through trial parameters must match —
// they change results without changing any (group, N) label, so a merge
// would silently mix incomparable points and break the paired-seed
// methodology.
func resumeCompatible(priorSpec json.RawMessage, spec sim.CampaignSpec) error {
	if len(priorSpec) == 0 {
		return nil
	}
	var prev sim.CampaignSpec
	if err := json.Unmarshal(priorSpec, &prev); err != nil {
		return fmt.Errorf("unreadable spec in manifest: %w", err)
	}
	type pinned struct {
		seed            int64
		replicates      int
		shardFirst      int
		shardCount      int
		commRange       float64
		jamRadius       float64
		adjacentHolesOK bool
		arInitProb      float64
		arMaxHops       int
	}
	pin := func(s sim.CampaignSpec) pinned {
		s = s.Normalized()
		// Resolve trial-level defaults an explicit spec may spell out,
		// so "comm_range: 10" and an omitted comm_range compare equal.
		if s.CommRange == 0 {
			s.CommRange = sim.PaperCommRange
		}
		return pinned{
			seed:            s.BaseSeed,
			replicates:      s.Replicates,
			shardFirst:      s.ShardFirst,
			shardCount:      s.ShardCount,
			commRange:       s.CommRange,
			jamRadius:       s.JamRadius,
			adjacentHolesOK: s.AdjacentHolesOK,
			arInitProb:      s.ARInitProb,
			arMaxHops:       s.ARMaxHops,
		}
	}
	if a, b := pin(prev), pin(spec); a != b {
		return fmt.Errorf("produced with %+v, current campaign has %+v; "+
			"rerun with matching parameters or a fresh -name", a, b)
	}
	return nil
}

// mergePoints combines the retained points of a prior manifest with the
// freshly computed ones and restores the canonical (group, X) order, so
// a resumed manifest is indistinguishable from a single-run one. The
// resume filter guarantees the two sets are disjoint.
func mergePoints(prior, fresh []experiment.Point) []experiment.Point {
	merged := make([]experiment.Point, 0, len(prior)+len(fresh))
	merged = append(merged, prior...)
	merged = append(merged, fresh...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Group != merged[j].Group {
			return merged[i].Group < merged[j].Group
		}
		return merged[i].X < merged[j].X
	})
	return merged
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSchemes(s string) ([]sim.SchemeKind, error) {
	var out []sim.SchemeKind
	for _, f := range splitList(s) {
		k, err := sim.ParseSchemeKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseGrids(s string) ([]sim.GridSize, error) {
	var out []sim.GridSize
	for _, f := range splitList(s) {
		g, err := sim.ParseGridSize(f)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func parseFailures(s string) ([]sim.FailureMode, error) {
	var out []sim.FailureMode
	for _, f := range splitList(s) {
		m, err := sim.ParseFailureMode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseWorkloads(s string) ([]sim.WorkloadSpec, error) {
	var out []sim.WorkloadSpec
	for _, f := range splitList(s) {
		spec := sim.WorkloadSpec{Kind: strings.ToLower(f)}
		if _, err := sim.BuildWorkload(spec); err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseRunners(s string) ([]sim.RunnerKind, error) {
	var out []sim.RunnerKind
	for _, f := range splitList(s) {
		r, err := sim.ParseRunnerKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// parseShard resolves "-shard i/n" (1-based) into the contiguous
// replicate block [first, first+count) of shard i; the even-split math
// is sim.ShardRange, shared with the dispatch driver so hand-launched
// and dispatched shards always cover identical ranges.
func parseShard(s string, replicates int) (first, count int, err error) {
	is, ns, ok := strings.Cut(strings.TrimSpace(s), "/")
	i, errI := strconv.Atoi(is)
	n, errN := strconv.Atoi(ns)
	if !ok || errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n, e.g. 2/4)", s)
	}
	return sim.ShardRange(i, n, replicates)
}

// runMerge stitches shard manifests (same spec, disjoint replicate
// ranges produced with -shard or -dispatch) into one campaign manifest
// plus metric tables. All validation — overlap, gaps, spec drift, the
// same shard passed twice, non-shard inputs — lives in
// dispatch.MergeShardManifests and fails loudly; a silent bad merge
// would corrupt the paired-seed methodology the campaign layer
// guarantees. A single manifest covering the whole replicate range
// merges degenerately.
func runMerge(w io.Writer, paths []string, outDir, name, metricsS string, ascii bool) error {
	manifest, mergedSpec, err := dispatch.MergeShardManifests(paths, name)
	if err != nil {
		return err
	}
	path, err := manifest.Save(outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "merged %d shard manifest(s) into %s (%d jobs, %d points)\n",
		len(paths), path, manifest.Jobs, len(manifest.Points))
	return writeTables(w, manifest.Points, metricsS, outDir, name, mergedSpec.Replicates, ascii)
}

func loadSpec(path string) (sim.CampaignSpec, error) {
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := sim.UnmarshalSpecJSON(data, &spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// runDispatch is the -dispatch / -fleet mode: supervise a fleet of
// worker slots over the shard work queue, then persist the auto-merged
// campaign manifest and its tables exactly like an unsharded run would.
// The fleet's progress stream tees to every observer the flags turned
// on — terminal meter, NDJSON re-emitter, dashboard publisher — plus
// the ledger's stats capture; all ride the same serialized callback.
// A fleet that fails or is aborted still gets its ledger record, with
// Status saying how it ended, so the run history shows unhealthy runs.
func runDispatch(ctx context.Context, w io.Writer, spec sim.CampaignSpec, opts dispatch.Options, metricsS string, ascii bool, progressMode string, logger *slog.Logger, rig *dashRig, ledPath string) error {
	outDir, name := opts.OutDir, opts.Name
	var sinks []func(dispatch.FleetSnapshot)
	if progressMode == "meter" {
		fm := dispatch.NewFleetMeter(os.Stderr)
		sinks = append(sinks, fm.Update)
	}
	if progressMode == "json" {
		// The initial event goes out before the fleet starts, carrying the
		// full campaign total — the same contract our own workers honor.
		total := 0
		spec.Normalized().ExecutedJobs(nil, func(sim.TrialJob) { total++ })
		progressOut.Write(experiment.Progress{Done: 0, Total: total}.MarshalLine())
		fj := &fleetJSON{w: progressOut}
		sinks = append(sinks, fj.update)
	}
	stats := newFleetStats()
	sinks = append(sinks, stats.update)
	if rig != nil {
		sinks = append(sinks, func(s dispatch.FleetSnapshot) {
			final := s.Terminal()
			if !rig.pub.Due(final) {
				return
			}
			rig.pub.Publish(s.Fleet, shardViews(s.Shards), groupViews(s.Groups), final)
		})
	}
	opts.OnProgress = func(s dispatch.FleetSnapshot) {
		for _, sink := range sinks {
			sink(s)
		}
	}
	start := time.Now()
	manifest, mergedSpec, err := dispatch.Run(ctx, spec, opts)
	wall := time.Since(start)
	if err != nil {
		if ledPath != "" {
			rec := telemetry.Record{
				Name:    name,
				Mode:    "dispatch",
				Status:  runStatus(err),
				Retries: stats.retries(),
				WallS:   wall.Seconds(),
				CPUS:    telemetry.CPUSeconds(),
			}
			appendLedger(ledPath, rec, spec, logger)
		}
		return err
	}
	path, err := manifest.Save(outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dispatched fleet; merged into %s (%d jobs, %d points)\n",
		path, manifest.Jobs, len(manifest.Points))
	if err := writeTables(w, manifest.Points, metricsS, outDir, name, mergedSpec.Replicates, ascii); err != nil {
		return err
	}
	if progressMode != "json" {
		printSummary(w, manifest.Points)
	}
	if ledPath != "" {
		rec := telemetry.Record{
			Name:     name,
			Mode:     "dispatch",
			Status:   telemetry.StatusCompleted,
			Manifest: path,
			Jobs:     manifest.Jobs,
			Points:   len(manifest.Points),
			Workers:  mergedSpec.Workers,
			Shards:   stats.shards,
			Retries:  stats.retries(),
			WallS:    wall.Seconds(),
			// Workers are reaped children, so their CPU time is in here.
			CPUS:         telemetry.CPUSeconds(),
			GroupSeconds: stats.groupSpan.Seconds(),
		}
		if wall > 0 {
			rec.TrialsPerS = float64(manifest.Jobs) / wall.Seconds()
		}
		appendLedger(ledPath, rec, mergedSpec, logger)
	}
	return nil
}

// runStatus classifies how a run ended for the ledger: a context
// cancellation (SIGINT/SIGTERM drain, a second Ctrl-C racing the first)
// is an abort; anything else is a failure.
func runStatus(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return telemetry.StatusAborted
	}
	return telemetry.StatusFailed
}

// signalContext cancels the returned context on the first SIGINT or
// SIGTERM, so campaigns drain gracefully — workers flush their
// checkpoints, the ledger records the abort — and exits immediately on
// the second signal for the human leaning on Ctrl-C.
func signalContext(logger *slog.Logger) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		logger.Warn("signal received: draining (checkpoints flush, ledger records the abort); second signal exits immediately",
			"signal", sig.String())
		cancel()
		if sig, ok := <-ch; ok {
			logger.Error("second signal: exiting immediately", "signal", sig.String())
			os.Exit(130)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel()
	}
}

// printSummary renders the per-point digest shown after every
// successful campaign.
func printSummary(w io.Writer, points []experiment.Point) {
	for _, p := range points {
		fmt.Fprintf(w, "%-24s N=%-5g moves=%6.1f±%-5.1f dist=%7.1f success=%5.1f%% recovered=%5.1f%%\n",
			p.Group, p.X,
			p.Metrics["moves"].Mean, p.Metrics["moves"].CI95,
			p.Metrics["distance"].Mean,
			p.Metrics["success_rate"].Mean,
			100*p.Metrics["recovered"].Mean)
	}
}

func run(args []string) (err error) {
	var dash *dashRig
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON campaign spec file (replaces the dimension flags)")
		schemesS   = fs.String("schemes", "SR,AR", "comma-separated schemes: SR, SR+shortcut, AR")
		gridsS     = fs.String("grids", "16x16", "comma-separated grid sizes, CxR")
		sparesS    = fs.String("spares", "", "comma-separated spare counts N (default: the paper's x axis)")
		holesS     = fs.String("holes", "1", "comma-separated simultaneous hole counts")
		failuresS  = fs.String("failures", "holes", "comma-separated legacy damage models: holes, jam")
		workloadsS = fs.String("workloads", "", "comma-separated workload kinds: "+strings.Join(sim.WorkloadKinds(), ", ")+" (parameters via -spec)")
		listWk     = fs.Bool("list-workloads", false, "print the registered workload kinds with parameters and exit")
		ttlsS      = fs.String("ttls", "", "comma-separated claim TTLs in rounds (adds a campaign dimension; SR-family sync runs only, 0 = claims never expire)")
		runnersS   = fs.String("runners", "", "comma-separated trial runners: sync, async (default sync)")
		resume     = fs.Bool("resume", false, "skip (group, N) cells already in the output manifest and merge new results into it")
		shardS     = fs.String("shard", "", "replicate shard i/n: run only the i-th of n contiguous replicate blocks (stitch with -merge)")
		merge      = fs.Bool("merge", false, "merge the shard manifests given as arguments into one campaign manifest instead of running trials")
		dispatchN  = fs.Int("dispatch", 0, "run the campaign over n supervised worker slots (lease-based work queue) and auto-merge their manifests")
		execS      = fs.String("exec", "", "worker command prefix for -dispatch ({slot} = slot number), e.g. \"ssh box{slot} --\"")
		fleetS     = fs.String("fleet", "", "fleet inventory file: one worker slot per line (\"local\" or an -exec-style prefix); implies dispatch mode")
		leaseS     = fs.Duration("lease-timeout", 0, "dispatch heartbeat deadline: a worker silent this long is killed and its shard re-queued (0 = 2m; set above the slowest trial)")
		retriesN   = fs.Int("max-retries", 0, "dispatch relaunch budget per shard (0 = default 2, negative = none)")
		progressS  = fs.String("progress", "meter", "progress display: meter, json (event protocol on stdout), none")
		checkpoint = fs.Bool("checkpoint", false, "rewrite the manifest after every completed cell so a killed run can -resume")
		replicates = fs.Int("replicates", 20, "trials per campaign cell")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
		jamRadius  = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		adjacent   = fs.Bool("adjacent", false, "allow adjacent hole cells")
		metricsS   = fs.String("metrics", "moves,distance,success_rate,recovered", "metrics to export as tables, or \"all\"")
		outDir     = fs.String("out", "out", "output directory for artifacts")
		name       = fs.String("name", "sweep", "campaign name (artifact base name)")
		ascii      = fs.Bool("ascii", false, "print ASCII previews of exported tables")
		quiet      = fs.Bool("quiet", false, "suppress the progress meter (alias for -progress none)")
		dashS      = fs.String("dash", "", "serve the live telemetry dashboard at this address (host:port; port 0 picks a free one)")
		dashLinger = fs.Duration("dash-linger", 0, "keep the dashboard serving this long after a successful campaign")
		pprofF     = fs.Bool("pprof", false, "expose net/http/pprof on the dashboard server (requires -dash)")
		ledgerS    = fs.String("ledger", "", "run-ledger NDJSON path (default <out>/ledger.ndjson; \"none\" disables)")
		ifCachedS  = fs.String("if-cached", "", "sweepd manifest store directory: on a spec-hash hit print the cached manifest path and exit without running; on a miss run and install the result")
	)
	// Collect positional arguments (the -merge shard manifests) while
	// allowing flags to follow them: the flag package stops at the first
	// positional, so re-parse the remainder until everything is consumed
	// ("sweep -merge a.json b.json -out dir" works either way around).
	var positional []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		// A lone "-" is a positional too (flag.Parse stops at it without
		// consuming it); collecting it keeps this loop making progress.
		for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}

	if *listWk {
		for _, info := range sim.WorkloadInfos() {
			fmt.Fprintf(os.Stdout, "%-10s %s\n", info.Kind, info.Help)
			if len(info.Params) > 0 {
				fmt.Fprintf(os.Stdout, "%-10s params: %s\n", "", strings.Join(info.Params, ", "))
			}
		}
		return nil
	}

	logger := telemetry.NewLogger(os.Stderr)

	// Resolve the progress channel early: when stdout carries the JSON
	// event protocol, every informational print moves to stderr so the
	// supervisor's stream stays parseable.
	progressMode := *progressS
	if *quiet && progressMode == "meter" {
		progressMode = "none"
	}
	switch progressMode {
	case "meter", "json", "none":
	default:
		return fmt.Errorf("unknown -progress mode %q (want meter, json, or none)", progressMode)
	}
	infoW := io.Writer(os.Stdout)
	if progressMode == "json" {
		infoW = os.Stderr
	}
	if *pprofF && *dashS == "" {
		return fmt.Errorf("-pprof rides the dashboard server; it requires -dash")
	}

	if *merge {
		// Only output-shaping flags combine with -merge; any campaign
		// dimension flag would be silently ignored, so reject it instead.
		allowed := map[string]bool{"merge": true, "out": true, "name": true, "metrics": true, "ascii": true}
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("-merge takes shard manifests as arguments and no campaign flags (got %s)",
				strings.Join(stray, ", "))
		}
		return runMerge(infoW, positional, *outDir, *name, *metricsS, *ascii)
	}
	if len(positional) > 0 {
		return fmt.Errorf("unexpected arguments %v (only -merge takes manifests)", positional)
	}

	var spec sim.CampaignSpec
	if *specPath != "" {
		loaded, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		failuresFlagSet := false
		fs.Visit(func(f *flag.Flag) { failuresFlagSet = failuresFlagSet || f.Name == "failures" })
		var err error
		if spec.Schemes, err = parseSchemes(*schemesS); err != nil {
			return err
		}
		if spec.Grids, err = parseGrids(*gridsS); err != nil {
			return err
		}
		if spec.Spares, err = parseInts(*sparesS); err != nil {
			return err
		}
		if spec.Holes, err = parseInts(*holesS); err != nil {
			return err
		}
		if spec.ClaimTTLs, err = parseInts(*ttlsS); err != nil {
			return err
		}
		if *workloadsS != "" {
			if failuresFlagSet {
				return fmt.Errorf("set -workloads or -failures, not both")
			}
			if spec.Workloads, err = parseWorkloads(*workloadsS); err != nil {
				return err
			}
		} else if spec.Failures, err = parseFailures(*failuresS); err != nil {
			return err
		}
		if spec.Runners, err = parseRunners(*runnersS); err != nil {
			return err
		}
		spec.Replicates = *replicates
		spec.BaseSeed = *seed
		spec.JamRadius = *jamRadius
		spec.AdjacentHolesOK = *adjacent
	}
	// Workers only changes wall clock, never results: an explicit flag
	// beats a value pinned in the spec file.
	workersFlagSet := false
	fs.Visit(func(f *flag.Flag) { workersFlagSet = workersFlagSet || f.Name == "workers" })
	if workersFlagSet || spec.Workers == 0 {
		spec.Workers = *workers
	}
	spec = spec.Normalized()
	if *shardS != "" {
		if spec.ShardCount > 0 {
			return fmt.Errorf("the spec file already pins a shard range; drop -shard or the spec fields")
		}
		first, count, err := parseShard(*shardS, spec.Replicates)
		if err != nil {
			return err
		}
		spec.ShardFirst, spec.ShardCount = first, count
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	// -if-cached is the CLI flavor of sweepd's dedupe: a store hit by
	// spec hash short-circuits the whole run (the path prints on stdout
	// for scripts to capture), and a miss runs normally then installs
	// the finished manifest so the next caller hits. Execution-only
	// fields (workers, shard layout) don't participate in the hash, so
	// any completed run of the same science is a hit.
	var cacheStore *sweepd.Store
	var cacheHash string
	if *ifCachedS != "" {
		if err := spec.ValidateUnsharded(); err != nil {
			return fmt.Errorf("-if-cached: %w", err)
		}
		store, err := sweepd.OpenStore(*ifCachedS)
		if err != nil {
			return err
		}
		hash, err := telemetry.SpecHash(spec)
		if err != nil {
			return err
		}
		if path, ok := store.Get(hash); ok {
			logger.Info("spec already in store; skipping the run", "hash", hash, "manifest", path)
			fmt.Fprintln(os.Stdout, path)
			return nil
		}
		cacheStore, cacheHash = store, hash
	}

	ledPath := resolveLedger(*ledgerS, *outDir)
	if *dashS != "" {
		rig, derr := startDash(*dashS, *pprofF, *dashLinger, logger)
		if derr != nil {
			return derr
		}
		// The dashboard outlives the campaign by -dash-linger on success
		// and shuts down immediately on failure, whichever path returns.
		defer func() { rig.finish(err) }()
		dash = rig
	}

	if *dispatchN > 0 || *fleetS != "" {
		if spec.ShardCount > 0 {
			return fmt.Errorf("-dispatch splits the campaign itself; drop -shard (or the spec's shard range)")
		}
		if *checkpoint {
			return fmt.Errorf("-checkpoint belongs to workers; the dispatch driver enables it for every shard")
		}
		dopts := dispatch.Options{
			Slots:        *dispatchN,
			OutDir:       *outDir,
			Name:         *name,
			Resume:       *resume,
			Retries:      *retriesN,
			LeaseTimeout: *leaseS,
			Logger:       logger,
		}
		switch {
		case *fleetS != "" && *execS != "":
			return fmt.Errorf("-fleet gives every slot its own command prefix; drop -exec")
		case *fleetS != "":
			slots, err := dispatch.LoadFleetInventory(*fleetS)
			if err != nil {
				return err
			}
			exe, err := os.Executable()
			if err != nil {
				return err
			}
			// Inventory lines are command prefixes; the worker binary rides
			// at the end of each (remote slots reach it via the shared
			// filesystem the -out directory already requires).
			for i, s := range slots {
				if s != nil {
					slots[i] = append(s, exe)
				}
			}
			dopts.Fleet = slots
		case *execS != "":
			exe, err := os.Executable()
			if err != nil {
				return err
			}
			dopts.Worker = append(strings.Fields(*execS), exe)
		}
		ctx, stop := signalContext(logger)
		defer stop()
		if err := runDispatch(ctx, infoW, spec, dopts, *metricsS, *ascii, progressMode, logger, dash, ledPath); err != nil {
			return err
		}
		return installCached(cacheStore, cacheHash, filepath.Join(*outDir, *name+".json"), logger)
	}
	if *execS != "" {
		return fmt.Errorf("-exec only applies to -dispatch")
	}
	if *leaseS != 0 || *retriesN != 0 {
		return fmt.Errorf("-lease-timeout and -max-retries only apply to dispatch mode (-dispatch or -fleet)")
	}

	// -resume: load the existing manifest (if any) and mark its
	// aggregated (group, N) cells as done, so only missing cells run.
	manifestPath := filepath.Join(*outDir, *name+".json")
	var priorPoints []experiment.Point
	done := make(map[resumeKey]bool)
	if *resume {
		data, err := os.ReadFile(manifestPath)
		switch {
		case err == nil:
			var prior experiment.Manifest
			if err := json.Unmarshal(data, &prior); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			if err := resumeCompatible(prior.Spec, spec); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			// Only prior cells inside the current job space count: they
			// are skipped and retained. Orphans (cells of a dimension
			// value the current spec dropped) are discarded so the
			// written manifest stays consistent with its recorded spec.
			current := make(map[resumeKey]bool)
			js := spec.JobSpace()
			for i := 0; i < js.Len(); i++ {
				j := js.At(i)
				current[resumeKey{j.Group(), float64(j.Spares)}] = true
			}
			orphans := 0
			for _, p := range prior.Points {
				if !current[resumeKey{p.Group, p.X}] {
					orphans++
					continue
				}
				priorPoints = append(priorPoints, p)
				done[resumeKey{p.Group, p.X}] = true
			}
			if orphans > 0 {
				logger.Info("resume: dropping cells outside the current spec",
					"manifest", manifestPath, "orphans", orphans)
			}
		case os.IsNotExist(err):
			// Nothing to resume from; run the full campaign.
		default:
			return err
		}
	}
	var keep func(sim.TrialJob) bool
	if len(done) > 0 {
		keep = func(j sim.TrialJob) bool {
			return !done[resumeKey{j.Group(), float64(j.Spares)}]
		}
	}

	// Count the jobs that will actually run (after the shard and resume
	// filters) and their per-group totals for the meter's breakdown.
	// ExecutedJobs applies exactly the filter RunCampaignSubset executes,
	// so the meter's — and the JSON protocol's — total always matches
	// the delivered stream: under -shard it is the shard's own trial
	// count, never the full campaign's replicate range.
	executed := 0
	groupTotal := make(map[string]int)
	var groupOrder []string
	spec.ExecutedJobs(keep, func(j sim.TrialJob) {
		executed++
		g := j.Group()
		if _, ok := groupTotal[g]; !ok {
			groupOrder = append(groupOrder, g)
		}
		groupTotal[g]++
	})
	// cellAll is every cell's expected trial count under the shard range
	// alone (no resume filter): the checkpointer needs it to tell a
	// completed cell from a partial one, and the Jobs accounting below
	// needs it to credit resumed-over prior cells.
	cellAll := make(map[resumeKey]int)
	spec.ExecutedJobs(nil, func(j sim.TrialJob) {
		cellAll[resumeKey{j.Group(), float64(j.Spares)}]++
	})
	priorJobs := 0
	for k := range done {
		priorJobs += cellAll[k]
	}
	totalJobs := spec.NumJobs()
	if spec.ShardCount > 0 {
		// A shard manifest records the trials it represents: the ones
		// this run executed plus the ones a resumed prior manifest
		// already carried — never the full campaign's count, and never
		// undercounting after a checkpointed retry.
		totalJobs = executed + priorJobs
	}
	opts := experiment.Options{Workers: spec.Workers}
	var meter *dispatch.Meter
	if progressMode == "meter" {
		meter = dispatch.NewMeter(os.Stderr, executed, groupTotal)
	}
	var emitter *jsonProgress
	if progressMode == "json" && executed > 0 {
		emitter = newJSONProgress(progressOut, executed, groupTotal)
	}
	// The dashboard tracker and the ledger's group timer ride the same
	// ordered sink as the meter; with a dashboard the tracker does both
	// jobs, without one a bare timer still feeds the ledger.
	var tracker *telemetry.Tracker
	var gtimer *telemetry.GroupTimer
	switch {
	case dash != nil:
		tracker = telemetry.NewTracker(dash.pub, executed, groupOrder, groupTotal)
	case ledPath != "":
		gtimer = telemetry.NewGroupTimer()
	}
	// Trials stream into online per-(group, N) accumulators: campaign
	// memory is O(groups), not O(trials). The meter rides the same
	// ordered sink, so its per-group counts advance deterministically.
	acc := experiment.NewAccumulator()
	var ck *checkpointer
	if *checkpoint {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		ck = &checkpointer{
			path:      manifestPath,
			name:      *name,
			spec:      spec,
			prior:     priorPoints,
			priorJobs: priorJobs,
			workers:   opts.Workers,
			acc:       acc,
			cellTotal: cellAll,
			cellDone:  make(map[resumeKey]int, len(cellAll)),
			completed: make(map[resumeKey]bool, len(cellAll)),
			log:       logger,
		}
	}
	// Test-only crash hook: WSNSWEEP_EXIT_AFTER=k kills the process
	// after k completed trials (checkpoint written first), simulating a
	// worker dying mid-run for the dispatch failure-path tests. The
	// richer WSNSWEEP_CHAOS fault injector lives in chaos.go.
	exitAfter := 0
	if s := os.Getenv("WSNSWEEP_EXIT_AFTER"); s != "" {
		exitAfter, _ = strconv.Atoi(s)
	}
	chaos := chaosFromEnv(logger)
	ran := 0
	ctx, stop := signalContext(logger)
	defer stop()
	start := time.Now()
	err = sim.RunCampaignSubset(ctx, spec, opts, keep,
		func(j sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			ran++
			group := j.Group()
			if meter != nil {
				meter.JobDone(group)
			}
			if emitter != nil {
				emitter.emit(ran, group)
			}
			if tracker != nil {
				tracker.TrialDone(group)
			} else if gtimer != nil {
				gtimer.Observe(group)
			}
			if ck != nil {
				if err := ck.trialDone(resumeKey{group, float64(j.Spares)}); err != nil {
					return err
				}
			}
			if exitAfter > 0 && ran == exitAfter {
				os.Exit(7)
			}
			if chaos != nil {
				chaos.trialDone(ran)
			}
			return nil
		})
	wall := time.Since(start)
	if err != nil {
		// A failed or drained run still records itself: the checkpoints
		// the manifest path holds are only half the story, the ledger says
		// how the run ended so cmd/runlog surfaces unhealthy history.
		if tracker != nil {
			tracker.Final()
		}
		if ledPath != "" {
			mode := "run"
			if spec.ShardCount > 0 {
				mode = "shard"
			}
			rec := telemetry.Record{
				Name:       *name,
				Mode:       mode,
				Status:     runStatus(err),
				Jobs:       ran,
				Workers:    spec.Workers,
				ShardFirst: spec.ShardFirst,
				ShardCount: spec.ShardCount,
				WallS:      wall.Seconds(),
				CPUS:       telemetry.CPUSeconds(),
			}
			if wall > 0 {
				rec.TrialsPerS = float64(ran) / wall.Seconds()
			}
			appendLedger(ledPath, rec, spec, logger)
		}
		return err
	}
	if tracker != nil {
		tracker.Final()
	}
	points := acc.Points()
	if len(done) > 0 {
		logger.Info("resume: skipped completed cells",
			"manifest", manifestPath, "cells", len(done), "new_trials", acc.Samples())
		points = mergePoints(priorPoints, points)
	}

	manifest, err := experiment.NewManifest(*name, spec, totalJobs, opts.Workers, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(*outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(infoW, "wrote %s (%d jobs, %d points)\n", path, totalJobs, len(points))
	if err := installCached(cacheStore, cacheHash, path, logger); err != nil {
		return err
	}

	if err := writeTables(infoW, points, *metricsS, *outDir, *name, spec.Replicates, *ascii); err != nil {
		return err
	}

	// A worker speaking the JSON protocol skips the per-point digest:
	// its supervisor prints the merged campaign's once.
	if progressMode != "json" {
		printSummary(infoW, points)
	}

	if ledPath != "" {
		mode := "run"
		if spec.ShardCount > 0 {
			mode = "shard"
		}
		var groupS map[string]float64
		switch {
		case tracker != nil:
			groupS = tracker.GroupSeconds()
		case gtimer != nil:
			groupS = gtimer.Seconds()
		}
		rec := telemetry.Record{
			Name:         *name,
			Mode:         mode,
			Status:       telemetry.StatusCompleted,
			Manifest:     path,
			Jobs:         totalJobs,
			Points:       len(points),
			Workers:      spec.Workers,
			ShardFirst:   spec.ShardFirst,
			ShardCount:   spec.ShardCount,
			WallS:        wall.Seconds(),
			CPUS:         telemetry.CPUSeconds(),
			GroupSeconds: groupS,
		}
		// Rate over trials actually executed: a resumed run is not
		// credited with the cells it skipped.
		if wall > 0 {
			rec.TrialsPerS = float64(ran) / wall.Seconds()
		}
		appendLedger(ledPath, rec, spec, logger)
	}
	return nil
}
