// Command sweep runs a multi-dimensional Monte-Carlo campaign on the
// parallel experiment engine: the cross product of control schemes, grid
// sizes, spare counts, hole counts, workloads, and runners, replicated
// and aggregated into mean/CI95 summaries. It writes a JSON manifest
// plus one CSV/gnuplot table per exported metric.
//
// Usage:
//
//	sweep [-schemes SR,AR] [-grids 16x16] [-spares 10,55,200]
//	      [-holes 1] [-workloads holes,churn | -failures holes,jam]
//	      [-runners sync,async] [-replicates 20] [-seed s]
//	      [-workers w] [-metrics moves,success_rate|all] [-out dir]
//	      [-name sweep] [-resume] [-shard i/n] [-checkpoint]
//	      [-progress meter|json|none] [-ascii] [-quiet]
//	sweep -spec campaign.json [-out dir] [-name sweep] ...
//	sweep -merge shard1.json shard2.json ... [-out dir] [-name merged]
//	sweep -dispatch n [-exec "ssh host{shard} --"] [campaign flags ...]
//
// A spec file is the JSON form of sim.CampaignSpec and replaces the
// dimension flags; workload parameters ({"kind": "churn", "every": 5})
// are available only there — the -workloads flag names bare kinds.
// Results are bit-identical for any -workers value.
//
// -resume merges into an existing manifest: every (group, N) cell
// already present is skipped, freshly run cells are added, and the
// merged manifest plus its metric tables are rewritten. Manifests are
// written on successful completion, so -resume grows a campaign in
// stages: run a narrow spec first, then rerun with added spare counts,
// schemes, grids, or workloads and only the new cells compute. The
// seed, replicate count, and pass-through trial parameters must match
// the prior manifest's; cells of dimension values the current spec no
// longer lists are dropped from the merged output.
//
// -shard i/n runs only the i-th of n contiguous replicate blocks of
// every campaign cell (1-based), so one campaign splits across boxes:
// each box runs the same spec with its own -shard and -name, and
// because replicate seeds derive from the full range, every shard
// computes exactly the trials the unsharded campaign would. -merge
// stitches the resulting shard manifests back into one campaign
// manifest plus metric tables, validating that the shards share one
// spec and that their replicate ranges tile the full range without
// overlap, gap, or duplicated shards. A single manifest covering the
// whole range (-shard 1/1) merges degenerately into the unsharded
// manifest. Merged medians cannot be recomputed from shard summaries;
// they are count-weighted estimates marked "median_approx" in the
// manifest.
//
// -dispatch n does all of that automatically: it splits the campaign
// into n shard specs, runs one supervised worker subprocess per shard
// (the current binary by default; -exec prefixes the command, with
// "{shard}" replaced by the shard number, so "ssh box{shard} --"
// reaches remote machines sharing the -out directory), folds the
// workers' progress into one live fleet meter, retries dead workers
// with -resume from their checkpoint manifests, and merges the shard
// manifests into the final campaign manifest.
//
// -progress selects the progress channel: "meter" is the human line on
// stderr, "json" emits newline-delimited experiment.Progress events
// ({"done":..,"total":..,"group":..}) on stdout — the protocol dispatch
// supervisors consume — and "none" is silent. -checkpoint rewrites the
// manifest (atomically) every time a campaign cell completes, so a
// killed run leaves a partial manifest a later -resume picks up; the
// dispatch driver enables it for every worker.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsncover/internal/dispatch"
	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// progressOut is where -progress=json events go. It is the process
// stdout — a dispatch supervisor reads the worker's stdout — and a
// variable only so tests can capture the stream.
var progressOut io.Writer = os.Stdout

// jsonProgress emits the newline-delimited progress protocol
// (experiment.Progress events) a dispatch supervisor consumes. The
// initial and final events always go out — the supervisor needs the
// totals up front and the completion for certain — and intermediate
// events are throttled like the human meter so a fast campaign never
// bottlenecks on pipe writes.
type jsonProgress struct {
	w     io.Writer
	total int
	last  time.Time
}

func newJSONProgress(w io.Writer, total int) *jsonProgress {
	e := &jsonProgress{w: w, total: total}
	e.emit(0, "")
	return e
}

func (e *jsonProgress) emit(done int, group string) {
	now := time.Now()
	if done != 0 && done != e.total && now.Sub(e.last) < 200*time.Millisecond {
		return
	}
	e.last = now
	e.w.Write(experiment.Progress{Done: done, Total: e.total, Group: group}.MarshalLine())
}

// checkpointer rewrites the manifest after every completed campaign
// cell, atomically (tmp + rename), so a run killed mid-campaign leaves
// a valid partial manifest at the real path for -resume to pick up.
// Only fully completed (group, N) cells are written: -resume skips
// whole cells, so a partial cell's trials would be rerun anyway.
type checkpointer struct {
	path      string // final manifest path; checkpoints land here atomically
	name      string
	spec      sim.CampaignSpec
	prior     []experiment.Point
	priorJobs int
	workers   int
	acc       *experiment.Accumulator
	cellTotal map[resumeKey]int
	cellDone  map[resumeKey]int
	completed map[resumeKey]bool
	doneJobs  int
}

// trialDone records one finished trial; when its cell completes, the
// manifest checkpoint is rewritten.
func (c *checkpointer) trialDone(k resumeKey) error {
	c.cellDone[k]++
	if c.cellDone[k] < c.cellTotal[k] {
		return nil
	}
	c.completed[k] = true
	c.doneJobs += c.cellTotal[k]
	return c.write()
}

func (c *checkpointer) write() error {
	pts := make([]experiment.Point, 0, len(c.completed))
	for _, p := range c.acc.Points() {
		if c.completed[resumeKey{p.Group, p.X}] {
			pts = append(pts, p)
		}
	}
	pts = mergePoints(c.prior, pts)
	manifest, err := experiment.NewManifest(c.name, c.spec, c.priorJobs+c.doneJobs, c.workers, pts)
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := manifest.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// writeTables exports one CSV/gnuplot table per requested metric,
// logging to w (stdout normally, stderr when stdout carries the JSON
// progress protocol).
func writeTables(w io.Writer, points []experiment.Point, metricsS, outDir, name string, replicates int, ascii bool) error {
	metrics := splitList(metricsS)
	if len(metrics) == 1 && metrics[0] == "all" {
		metrics = experiment.MetricNames(points)
	}
	sort.Strings(metrics)
	for _, metric := range metrics {
		tb, err := experiment.Table(points, metric,
			fmt.Sprintf("%s: mean %s per trial (%d replicates/cell)", name, metric, replicates),
			"N", metric)
		if err != nil {
			return err
		}
		paths, err := tb.SaveAll(outDir, name+"-"+metric)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", strings.Join(paths, ", "))
		if ascii {
			fmt.Fprintln(w, tb.ASCII(72, 16))
		}
	}
	return nil
}

// resumeKey identifies one aggregated campaign cell in a manifest.
type resumeKey struct {
	group string
	x     float64
}

// resumeCompatible rejects a resume whose prior manifest was produced
// under different trial physics or seeding: dimension lists may differ
// freely (extending the campaign is the point of -resume, and the
// dimensions are encoded in each point's group/X identity), but the
// seed, replicate count, and pass-through trial parameters must match —
// they change results without changing any (group, N) label, so a merge
// would silently mix incomparable points and break the paired-seed
// methodology.
func resumeCompatible(priorSpec json.RawMessage, spec sim.CampaignSpec) error {
	if len(priorSpec) == 0 {
		return nil
	}
	var prev sim.CampaignSpec
	if err := json.Unmarshal(priorSpec, &prev); err != nil {
		return fmt.Errorf("unreadable spec in manifest: %w", err)
	}
	type pinned struct {
		seed            int64
		replicates      int
		shardFirst      int
		shardCount      int
		commRange       float64
		jamRadius       float64
		adjacentHolesOK bool
		arInitProb      float64
		arMaxHops       int
	}
	pin := func(s sim.CampaignSpec) pinned {
		s = s.Normalized()
		// Resolve trial-level defaults an explicit spec may spell out,
		// so "comm_range: 10" and an omitted comm_range compare equal.
		if s.CommRange == 0 {
			s.CommRange = sim.PaperCommRange
		}
		return pinned{
			seed:            s.BaseSeed,
			replicates:      s.Replicates,
			shardFirst:      s.ShardFirst,
			shardCount:      s.ShardCount,
			commRange:       s.CommRange,
			jamRadius:       s.JamRadius,
			adjacentHolesOK: s.AdjacentHolesOK,
			arInitProb:      s.ARInitProb,
			arMaxHops:       s.ARMaxHops,
		}
	}
	if a, b := pin(prev), pin(spec); a != b {
		return fmt.Errorf("produced with %+v, current campaign has %+v; "+
			"rerun with matching parameters or a fresh -name", a, b)
	}
	return nil
}

// mergePoints combines the retained points of a prior manifest with the
// freshly computed ones and restores the canonical (group, X) order, so
// a resumed manifest is indistinguishable from a single-run one. The
// resume filter guarantees the two sets are disjoint.
func mergePoints(prior, fresh []experiment.Point) []experiment.Point {
	merged := make([]experiment.Point, 0, len(prior)+len(fresh))
	merged = append(merged, prior...)
	merged = append(merged, fresh...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Group != merged[j].Group {
			return merged[i].Group < merged[j].Group
		}
		return merged[i].X < merged[j].X
	})
	return merged
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSchemes(s string) ([]sim.SchemeKind, error) {
	var out []sim.SchemeKind
	for _, f := range splitList(s) {
		k, err := sim.ParseSchemeKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseGrids(s string) ([]sim.GridSize, error) {
	var out []sim.GridSize
	for _, f := range splitList(s) {
		g, err := sim.ParseGridSize(f)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func parseFailures(s string) ([]sim.FailureMode, error) {
	var out []sim.FailureMode
	for _, f := range splitList(s) {
		m, err := sim.ParseFailureMode(f)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseWorkloads(s string) ([]sim.WorkloadSpec, error) {
	var out []sim.WorkloadSpec
	for _, f := range splitList(s) {
		spec := sim.WorkloadSpec{Kind: strings.ToLower(f)}
		if _, err := sim.BuildWorkload(spec); err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseRunners(s string) ([]sim.RunnerKind, error) {
	var out []sim.RunnerKind
	for _, f := range splitList(s) {
		r, err := sim.ParseRunnerKind(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// parseShard resolves "-shard i/n" (1-based) into the contiguous
// replicate block [first, first+count) of shard i; the even-split math
// is sim.ShardRange, shared with the dispatch driver so hand-launched
// and dispatched shards always cover identical ranges.
func parseShard(s string, replicates int) (first, count int, err error) {
	is, ns, ok := strings.Cut(strings.TrimSpace(s), "/")
	i, errI := strconv.Atoi(is)
	n, errN := strconv.Atoi(ns)
	if !ok || errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n, e.g. 2/4)", s)
	}
	return sim.ShardRange(i, n, replicates)
}

// runMerge stitches shard manifests (same spec, disjoint replicate
// ranges produced with -shard or -dispatch) into one campaign manifest
// plus metric tables. All validation — overlap, gaps, spec drift, the
// same shard passed twice, non-shard inputs — lives in
// dispatch.MergeShardManifests and fails loudly; a silent bad merge
// would corrupt the paired-seed methodology the campaign layer
// guarantees. A single manifest covering the whole replicate range
// merges degenerately.
func runMerge(w io.Writer, paths []string, outDir, name, metricsS string, ascii bool) error {
	manifest, mergedSpec, err := dispatch.MergeShardManifests(paths, name)
	if err != nil {
		return err
	}
	path, err := manifest.Save(outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "merged %d shard manifest(s) into %s (%d jobs, %d points)\n",
		len(paths), path, manifest.Jobs, len(manifest.Points))
	return writeTables(w, manifest.Points, metricsS, outDir, name, mergedSpec.Replicates, ascii)
}

func loadSpec(path string) (sim.CampaignSpec, error) {
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := sim.UnmarshalSpecJSON(data, &spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// runDispatch is the -dispatch n mode: supervise a fleet of shard
// workers, then persist the auto-merged campaign manifest and its
// tables exactly like an unsharded run would.
func runDispatch(w io.Writer, spec sim.CampaignSpec, shards int, execS, outDir, name, metricsS string, resume, ascii bool, progressMode string) error {
	opts := dispatch.Options{
		Shards: shards,
		OutDir: outDir,
		Name:   name,
		Resume: resume,
	}
	if execS != "" {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		opts.Worker = append(strings.Fields(execS), exe)
	}
	if progressMode == "meter" {
		fm := dispatch.NewFleetMeter(os.Stderr)
		opts.OnProgress = fm.Update
	}
	manifest, mergedSpec, err := dispatch.Run(context.Background(), spec, opts)
	if err != nil {
		return err
	}
	path, err := manifest.Save(outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dispatched %d shards; merged into %s (%d jobs, %d points)\n",
		shards, path, manifest.Jobs, len(manifest.Points))
	if err := writeTables(w, manifest.Points, metricsS, outDir, name, mergedSpec.Replicates, ascii); err != nil {
		return err
	}
	printSummary(w, manifest.Points)
	return nil
}

// printSummary renders the per-point digest shown after every
// successful campaign.
func printSummary(w io.Writer, points []experiment.Point) {
	for _, p := range points {
		fmt.Fprintf(w, "%-24s N=%-5g moves=%6.1f±%-5.1f dist=%7.1f success=%5.1f%% recovered=%5.1f%%\n",
			p.Group, p.X,
			p.Metrics["moves"].Mean, p.Metrics["moves"].CI95,
			p.Metrics["distance"].Mean,
			p.Metrics["success_rate"].Mean,
			100*p.Metrics["recovered"].Mean)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON campaign spec file (replaces the dimension flags)")
		schemesS   = fs.String("schemes", "SR,AR", "comma-separated schemes: SR, SR+shortcut, AR")
		gridsS     = fs.String("grids", "16x16", "comma-separated grid sizes, CxR")
		sparesS    = fs.String("spares", "", "comma-separated spare counts N (default: the paper's x axis)")
		holesS     = fs.String("holes", "1", "comma-separated simultaneous hole counts")
		failuresS  = fs.String("failures", "holes", "comma-separated legacy damage models: holes, jam")
		workloadsS = fs.String("workloads", "", "comma-separated workload kinds: "+strings.Join(sim.WorkloadKinds(), ", ")+" (parameters via -spec)")
		runnersS   = fs.String("runners", "", "comma-separated trial runners: sync, async (default sync)")
		resume     = fs.Bool("resume", false, "skip (group, N) cells already in the output manifest and merge new results into it")
		shardS     = fs.String("shard", "", "replicate shard i/n: run only the i-th of n contiguous replicate blocks (stitch with -merge)")
		merge      = fs.Bool("merge", false, "merge the shard manifests given as arguments into one campaign manifest instead of running trials")
		dispatchN  = fs.Int("dispatch", 0, "run the campaign as n supervised shard worker subprocesses and auto-merge their manifests")
		execS      = fs.String("exec", "", "worker command prefix for -dispatch ({shard} = shard number), e.g. \"ssh box{shard} --\"")
		progressS  = fs.String("progress", "meter", "progress display: meter, json (event protocol on stdout), none")
		checkpoint = fs.Bool("checkpoint", false, "rewrite the manifest after every completed cell so a killed run can -resume")
		replicates = fs.Int("replicates", 20, "trials per campaign cell")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
		jamRadius  = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		adjacent   = fs.Bool("adjacent", false, "allow adjacent hole cells")
		metricsS   = fs.String("metrics", "moves,distance,success_rate,recovered", "metrics to export as tables, or \"all\"")
		outDir     = fs.String("out", "out", "output directory for artifacts")
		name       = fs.String("name", "sweep", "campaign name (artifact base name)")
		ascii      = fs.Bool("ascii", false, "print ASCII previews of exported tables")
		quiet      = fs.Bool("quiet", false, "suppress the progress meter (alias for -progress none)")
	)
	// Collect positional arguments (the -merge shard manifests) while
	// allowing flags to follow them: the flag package stops at the first
	// positional, so re-parse the remainder until everything is consumed
	// ("sweep -merge a.json b.json -out dir" works either way around).
	var positional []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		// A lone "-" is a positional too (flag.Parse stops at it without
		// consuming it); collecting it keeps this loop making progress.
		for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}

	// Resolve the progress channel early: when stdout carries the JSON
	// event protocol, every informational print moves to stderr so the
	// supervisor's stream stays parseable.
	progressMode := *progressS
	if *quiet && progressMode == "meter" {
		progressMode = "none"
	}
	switch progressMode {
	case "meter", "json", "none":
	default:
		return fmt.Errorf("unknown -progress mode %q (want meter, json, or none)", progressMode)
	}
	infoW := io.Writer(os.Stdout)
	if progressMode == "json" {
		infoW = os.Stderr
	}

	if *merge {
		// Only output-shaping flags combine with -merge; any campaign
		// dimension flag would be silently ignored, so reject it instead.
		allowed := map[string]bool{"merge": true, "out": true, "name": true, "metrics": true, "ascii": true}
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("-merge takes shard manifests as arguments and no campaign flags (got %s)",
				strings.Join(stray, ", "))
		}
		return runMerge(infoW, positional, *outDir, *name, *metricsS, *ascii)
	}
	if len(positional) > 0 {
		return fmt.Errorf("unexpected arguments %v (only -merge takes manifests)", positional)
	}

	var spec sim.CampaignSpec
	if *specPath != "" {
		loaded, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		failuresFlagSet := false
		fs.Visit(func(f *flag.Flag) { failuresFlagSet = failuresFlagSet || f.Name == "failures" })
		var err error
		if spec.Schemes, err = parseSchemes(*schemesS); err != nil {
			return err
		}
		if spec.Grids, err = parseGrids(*gridsS); err != nil {
			return err
		}
		if spec.Spares, err = parseInts(*sparesS); err != nil {
			return err
		}
		if spec.Holes, err = parseInts(*holesS); err != nil {
			return err
		}
		if *workloadsS != "" {
			if failuresFlagSet {
				return fmt.Errorf("set -workloads or -failures, not both")
			}
			if spec.Workloads, err = parseWorkloads(*workloadsS); err != nil {
				return err
			}
		} else if spec.Failures, err = parseFailures(*failuresS); err != nil {
			return err
		}
		if spec.Runners, err = parseRunners(*runnersS); err != nil {
			return err
		}
		spec.Replicates = *replicates
		spec.BaseSeed = *seed
		spec.JamRadius = *jamRadius
		spec.AdjacentHolesOK = *adjacent
	}
	// Workers only changes wall clock, never results: an explicit flag
	// beats a value pinned in the spec file.
	workersFlagSet := false
	fs.Visit(func(f *flag.Flag) { workersFlagSet = workersFlagSet || f.Name == "workers" })
	if workersFlagSet || spec.Workers == 0 {
		spec.Workers = *workers
	}
	spec = spec.Normalized()
	if *shardS != "" {
		if spec.ShardCount > 0 {
			return fmt.Errorf("the spec file already pins a shard range; drop -shard or the spec fields")
		}
		first, count, err := parseShard(*shardS, spec.Replicates)
		if err != nil {
			return err
		}
		spec.ShardFirst, spec.ShardCount = first, count
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	if *dispatchN > 0 {
		if spec.ShardCount > 0 {
			return fmt.Errorf("-dispatch splits the campaign itself; drop -shard (or the spec's shard range)")
		}
		if *checkpoint {
			return fmt.Errorf("-checkpoint belongs to workers; the dispatch driver enables it for every shard")
		}
		if progressMode == "json" {
			return fmt.Errorf("-dispatch renders a fleet meter; the JSON protocol is spoken by its workers")
		}
		return runDispatch(infoW, spec, *dispatchN, *execS, *outDir, *name, *metricsS, *resume, *ascii, progressMode)
	}
	if *execS != "" {
		return fmt.Errorf("-exec only applies to -dispatch")
	}

	// -resume: load the existing manifest (if any) and mark its
	// aggregated (group, N) cells as done, so only missing cells run.
	manifestPath := filepath.Join(*outDir, *name+".json")
	var priorPoints []experiment.Point
	done := make(map[resumeKey]bool)
	if *resume {
		data, err := os.ReadFile(manifestPath)
		switch {
		case err == nil:
			var prior experiment.Manifest
			if err := json.Unmarshal(data, &prior); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			if err := resumeCompatible(prior.Spec, spec); err != nil {
				return fmt.Errorf("resume manifest %s: %w", manifestPath, err)
			}
			// Only prior cells inside the current job space count: they
			// are skipped and retained. Orphans (cells of a dimension
			// value the current spec dropped) are discarded so the
			// written manifest stays consistent with its recorded spec.
			current := make(map[resumeKey]bool)
			js := spec.JobSpace()
			for i := 0; i < js.Len(); i++ {
				j := js.At(i)
				current[resumeKey{j.Group(), float64(j.Spares)}] = true
			}
			orphans := 0
			for _, p := range prior.Points {
				if !current[resumeKey{p.Group, p.X}] {
					orphans++
					continue
				}
				priorPoints = append(priorPoints, p)
				done[resumeKey{p.Group, p.X}] = true
			}
			if orphans > 0 {
				fmt.Fprintf(infoW, "resume: dropping %d cells of %s outside the current spec\n",
					orphans, manifestPath)
			}
		case os.IsNotExist(err):
			// Nothing to resume from; run the full campaign.
		default:
			return err
		}
	}
	var keep func(sim.TrialJob) bool
	if len(done) > 0 {
		keep = func(j sim.TrialJob) bool {
			return !done[resumeKey{j.Group(), float64(j.Spares)}]
		}
	}

	// Count the jobs that will actually run (after the shard and resume
	// filters) and their per-group totals for the meter's breakdown.
	// ExecutedJobs applies exactly the filter RunCampaignSubset executes,
	// so the meter's — and the JSON protocol's — total always matches
	// the delivered stream: under -shard it is the shard's own trial
	// count, never the full campaign's replicate range.
	executed := 0
	groupTotal := make(map[string]int)
	spec.ExecutedJobs(keep, func(j sim.TrialJob) {
		executed++
		groupTotal[j.Group()]++
	})
	// cellAll is every cell's expected trial count under the shard range
	// alone (no resume filter): the checkpointer needs it to tell a
	// completed cell from a partial one, and the Jobs accounting below
	// needs it to credit resumed-over prior cells.
	cellAll := make(map[resumeKey]int)
	spec.ExecutedJobs(nil, func(j sim.TrialJob) {
		cellAll[resumeKey{j.Group(), float64(j.Spares)}]++
	})
	priorJobs := 0
	for k := range done {
		priorJobs += cellAll[k]
	}
	totalJobs := spec.NumJobs()
	if spec.ShardCount > 0 {
		// A shard manifest records the trials it represents: the ones
		// this run executed plus the ones a resumed prior manifest
		// already carried — never the full campaign's count, and never
		// undercounting after a checkpointed retry.
		totalJobs = executed + priorJobs
	}
	opts := experiment.Options{Workers: spec.Workers}
	var meter *dispatch.Meter
	if progressMode == "meter" {
		meter = dispatch.NewMeter(os.Stderr, executed, groupTotal)
	}
	var emitter *jsonProgress
	if progressMode == "json" && executed > 0 {
		emitter = newJSONProgress(progressOut, executed)
	}
	// Trials stream into online per-(group, N) accumulators: campaign
	// memory is O(groups), not O(trials). The meter rides the same
	// ordered sink, so its per-group counts advance deterministically.
	acc := experiment.NewAccumulator()
	var ck *checkpointer
	if *checkpoint {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		ck = &checkpointer{
			path:      manifestPath,
			name:      *name,
			spec:      spec,
			prior:     priorPoints,
			priorJobs: priorJobs,
			workers:   opts.Workers,
			acc:       acc,
			cellTotal: cellAll,
			cellDone:  make(map[resumeKey]int, len(cellAll)),
			completed: make(map[resumeKey]bool, len(cellAll)),
		}
	}
	// Test-only crash hook: WSNSWEEP_EXIT_AFTER=k kills the process
	// after k completed trials (checkpoint written first), simulating a
	// worker dying mid-run for the dispatch failure-path tests.
	exitAfter := 0
	if s := os.Getenv("WSNSWEEP_EXIT_AFTER"); s != "" {
		exitAfter, _ = strconv.Atoi(s)
	}
	ran := 0
	err := sim.RunCampaignSubset(context.Background(), spec, opts, keep,
		func(j sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			ran++
			group := j.Group()
			if meter != nil {
				meter.JobDone(group)
			}
			if emitter != nil {
				emitter.emit(ran, group)
			}
			if ck != nil {
				if err := ck.trialDone(resumeKey{group, float64(j.Spares)}); err != nil {
					return err
				}
			}
			if exitAfter > 0 && ran == exitAfter {
				os.Exit(7)
			}
			return nil
		})
	if err != nil {
		return err
	}
	points := acc.Points()
	if len(done) > 0 {
		fmt.Fprintf(infoW, "resume: %d cells already in %s, ran %d new trials\n",
			len(done), manifestPath, acc.Samples())
		points = mergePoints(priorPoints, points)
	}

	manifest, err := experiment.NewManifest(*name, spec, totalJobs, opts.Workers, points)
	if err != nil {
		return err
	}
	path, err := manifest.Save(*outDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(infoW, "wrote %s (%d jobs, %d points)\n", path, totalJobs, len(points))

	if err := writeTables(infoW, points, *metricsS, *outDir, *name, spec.Replicates, *ascii); err != nil {
		return err
	}

	// A worker speaking the JSON protocol skips the per-point digest:
	// its supervisor prints the merged campaign's once.
	if progressMode != "json" {
		printSummary(infoW, points)
	}
	return nil
}
