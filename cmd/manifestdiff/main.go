// Command manifestdiff compares two campaign manifests under the shard
// merge contract, so CI and operators can assert that a sharded (or
// dispatched) campaign reproduced an unsharded reference:
//
//	manifestdiff a.json b.json
//
// Structural fields — name, job counts, point identities, metric names,
// and the exactly-merged statistics (N, min, max) — must match
// byte-for-byte. Mean, standard deviation, and CI95 must agree within a
// relative tolerance (-tol, default 1e-9): the pooled-variance merge
// reassociates floating-point sums, so the last bits legitimately
// wobble. Medians are compared only when both sides are exact; a median
// marked median_approx (a multi-shard merge, or the streaming P-squared
// estimate beyond five replicates) is an estimate and is skipped.
// Execution metadata — worker counts, fresh-build and shard-range
// fields — is ignored: it changes wall clock, never results.
//
// The comparison itself is dispatch.DiffManifests; cmd/runlog diff
// applies the same contract to the manifests of two ledger records.
//
// Exit status: 0 when equivalent, 1 when the manifests differ, 2 on
// usage or read errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"wsncover/internal/dispatch"
)

func main() {
	tol := flag.Float64("tol", 1e-9, "relative tolerance for mean/stddev/CI95")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestdiff [-tol t] a.json b.json")
		os.Exit(2)
	}
	diffs, err := dispatch.DiffManifests(flag.Arg(0), flag.Arg(1), *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manifestdiff:", err)
		os.Exit(2)
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Println(d)
		}
		fmt.Printf("%d difference(s) between %s and %s\n", len(diffs), flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("%s and %s are equivalent (modulo estimated medians and execution metadata)\n",
		flag.Arg(0), flag.Arg(1))
}
