// Command coveragesim runs one configurable hole-recovery simulation and
// reports the cost metrics of the selected control scheme.
//
// Usage:
//
//	coveragesim [-grid 16x16] [-scheme SR|SR+shortcut|AR] [-spares n]
//	            [-holes h] [-failure holes|jam] [-jam-radius r]
//	            [-seed s] [-show] [-adjacent]
//
// -show renders the grid occupancy before and after recovery. -failure
// jam replaces the random vacant cells with a jammed disc at a random
// center (the region attack of Xu et al.).
package main

import (
	"flag"
	"fmt"
	"os"

	"wsncover/internal/coverage"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
	"wsncover/internal/visual"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coveragesim:", err)
		os.Exit(1)
	}
}

func parseGrid(s string) (cols, rows int, err error) {
	g, err := sim.ParseGridSize(s)
	if err != nil {
		return 0, 0, err
	}
	return g.Cols, g.Rows, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("coveragesim", flag.ContinueOnError)
	var (
		gridSpec  = fs.String("grid", "16x16", "grid system size, CxR")
		schemeS   = fs.String("scheme", "SR", "control scheme: SR, SR+shortcut, or AR")
		spares    = fs.Int("spares", 100, "spare nodes N in the network")
		holes     = fs.Int("holes", 1, "simultaneous holes to create")
		failureS  = fs.String("failure", "holes", "damage model: holes (random vacant cells) or jam (disc attack)")
		jamRadius = fs.Float64("jam-radius", 0, "jammed disc radius in meters (0 = 1.5 cells)")
		seed      = fs.Int64("seed", 1, "random seed")
		show      = fs.Bool("show", false, "render grid occupancy before/after")
		adjacent  = fs.Bool("adjacent", false, "allow adjacent hole cells")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cols, rows, err := parseGrid(*gridSpec)
	if err != nil {
		return err
	}
	scheme, err := sim.ParseSchemeKind(*schemeS)
	if err != nil {
		return err
	}
	failure, err := sim.ParseFailureMode(*failureS)
	if err != nil {
		return err
	}

	// Build the network explicitly (rather than via sim.RunTrial) so the
	// -show option can render intermediate state; ApplyDamage keeps the
	// damage identical to a sim trial at the same seed.
	rng := randx.New(*seed)
	sys, err := grid.NewForCommRange(cols, rows, sim.PaperCommRange, geom.Pt(0, 0))
	if err != nil {
		return err
	}
	net := network.New(sys, node.EnergyModel{})
	damage, err := sim.ApplyDamage(net, sim.TrialConfig{
		Cols: cols, Rows: rows, Scheme: scheme, Spares: *spares,
		Holes: *holes, AdjacentHolesOK: *adjacent,
		Failure: failure, JamRadius: *jamRadius,
	}, rng)
	if err != nil {
		return err
	}
	if failure == sim.FailJam {
		fmt.Printf("grid %dx%d (r=%.4f m, R=%.1f m), N=%d spares, jam disc radius %.2f m at (%.1f, %.1f): %d nodes down, %d hole(s)\n",
			cols, rows, sys.CellSize(), sys.CommRange(), *spares,
			damage.JamRadius, damage.JamCenter.X, damage.JamCenter.Y,
			damage.Killed, coverage.HoleCount(net))
	} else {
		fmt.Printf("grid %dx%d (r=%.4f m, R=%.1f m), N=%d spares, %d hole(s) at %v\n",
			cols, rows, sys.CellSize(), sys.CommRange(), *spares, *holes, damage.HoleCells)
	}
	if *show {
		fmt.Println("before:")
		fmt.Print(visual.Network(net))
	}

	ctrl, err := sim.BuildScheme(net, sim.TrialConfig{
		Cols: cols, Rows: rows, Scheme: scheme,
	}, rng.Split(3))
	if err != nil {
		return err
	}
	rounds, err := sim.RunToConvergence(ctrl, 2*cols*rows+16)
	if err != nil {
		return err
	}

	if *show {
		fmt.Println("after:")
		fmt.Print(visual.Network(net))
	}
	s := ctrl.Collector().Summarize()
	rep := coverage.Snapshot(net)
	fmt.Printf("scheme=%s rounds=%d\n", ctrl.Name(), rounds)
	fmt.Printf("processes initiated=%d converged=%d failed=%d success=%.1f%%\n",
		s.Initiated, s.Converged, s.Failed, s.SuccessRate())
	fmt.Printf("node movements=%d total distance=%.2f m messages=%d\n",
		s.Moves, s.Distance, s.Messages)
	fmt.Printf("coverage: holes=%d complete=%v connected=%v\n",
		rep.Holes, rep.Complete, rep.HeadConnected)
	return nil
}
