// Command coveragesim runs one configurable hole-recovery simulation and
// reports the cost metrics of the selected control scheme.
//
// Usage:
//
//	coveragesim [-grid 16x16] [-scheme SR|SR+shortcut|AR] [-spares n]
//	            [-holes h] [-seed s] [-show] [-adjacent]
//
// -show renders the grid occupancy before and after recovery.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wsncover/internal/coverage"
	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
	"wsncover/internal/visual"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coveragesim:", err)
		os.Exit(1)
	}
}

func parseGrid(s string) (cols, rows int, err error) {
	if _, err := fmt.Sscanf(s, "%dx%d", &cols, &rows); err != nil {
		return 0, 0, fmt.Errorf("bad -grid %q (want e.g. 16x16)", s)
	}
	return cols, rows, nil
}

func parseScheme(s string) (sim.SchemeKind, error) {
	switch strings.ToUpper(s) {
	case "SR":
		return sim.SR, nil
	case "SR+SHORTCUT", "SRS":
		return sim.SRShortcut, nil
	case "AR":
		return sim.AR, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want SR, SR+shortcut, or AR)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coveragesim", flag.ContinueOnError)
	var (
		gridSpec = fs.String("grid", "16x16", "grid system size, CxR")
		schemeS  = fs.String("scheme", "SR", "control scheme: SR, SR+shortcut, or AR")
		spares   = fs.Int("spares", 100, "spare nodes N in the network")
		holes    = fs.Int("holes", 1, "simultaneous holes to create")
		seed     = fs.Int64("seed", 1, "random seed")
		show     = fs.Bool("show", false, "render grid occupancy before/after")
		adjacent = fs.Bool("adjacent", false, "allow adjacent hole cells")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cols, rows, err := parseGrid(*gridSpec)
	if err != nil {
		return err
	}
	scheme, err := parseScheme(*schemeS)
	if err != nil {
		return err
	}

	// Build the network explicitly (rather than via sim.RunTrial) so the
	// -show option can render intermediate state.
	rng := randx.New(*seed)
	sys, err := grid.NewForCommRange(cols, rows, sim.PaperCommRange, geom.Pt(0, 0))
	if err != nil {
		return err
	}
	net := network.New(sys, node.EnergyModel{})
	holeCells, err := deploy.PickHoleCells(sys, *holes, !*adjacent, rng.Split(1))
	if err != nil {
		return err
	}
	if err := deploy.Controlled(net, *spares, holeCells, rng.Split(2)); err != nil {
		return err
	}

	fmt.Printf("grid %dx%d (r=%.4f m, R=%.1f m), N=%d spares, %d hole(s) at %v\n",
		cols, rows, sys.CellSize(), sys.CommRange(), *spares, *holes, holeCells)
	if *show {
		fmt.Println("before:")
		fmt.Print(visual.Network(net))
	}

	ctrl, err := sim.BuildScheme(net, sim.TrialConfig{
		Cols: cols, Rows: rows, Scheme: scheme,
	}, rng.Split(3))
	if err != nil {
		return err
	}
	rounds, err := sim.RunToConvergence(ctrl, 2*cols*rows+16)
	if err != nil {
		return err
	}

	if *show {
		fmt.Println("after:")
		fmt.Print(visual.Network(net))
	}
	s := ctrl.Collector().Summarize()
	rep := coverage.Snapshot(net)
	fmt.Printf("scheme=%s rounds=%d\n", ctrl.Name(), rounds)
	fmt.Printf("processes initiated=%d converged=%d failed=%d success=%.1f%%\n",
		s.Initiated, s.Converged, s.Failed, s.SuccessRate())
	fmt.Printf("node movements=%d total distance=%.2f m messages=%d\n",
		s.Moves, s.Distance, s.Messages)
	fmt.Printf("coverage: holes=%d complete=%v connected=%v\n",
		rep.Holes, rep.Complete, rep.HeadConnected)
	return nil
}
