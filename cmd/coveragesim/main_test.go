package main

import "testing"

func TestParseGrid(t *testing.T) {
	cols, rows, err := parseGrid("16x16")
	if err != nil || cols != 16 || rows != 16 {
		t.Errorf("parseGrid = %d, %d, %v", cols, rows, err)
	}
	if _, _, err := parseGrid("16by16"); err == nil {
		t.Error("bad spec should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-grid", "8x8", "-scheme", "SR", "-spares", "20", "-holes", "2", "-seed", "3"},
		{"-grid", "8x8", "-scheme", "AR", "-spares", "20", "-holes", "1", "-seed", "4", "-show"},
		{"-grid", "5x5", "-scheme", "SR+shortcut", "-spares", "5", "-seed", "5"},
		{"-grid", "8x8", "-spares", "30", "-holes", "3", "-adjacent", "-seed", "6"},
		{"-grid", "12x12", "-scheme", "SR", "-spares", "40", "-failure", "jam", "-seed", "7"},
		{"-grid", "12x12", "-scheme", "AR", "-spares", "40", "-failure", "jam", "-jam-radius", "9", "-seed", "8", "-show"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-grid", "bad"},
		{"-scheme", "nope"},
		{"-failure", "flood"},
		{"-grid", "2x2", "-holes", "9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
