package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuick(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-quick", "-ascii=false"})
	if err != nil {
		t.Fatal(err)
	}
	// All ten figure panels written as both .csv and .dat.
	for _, id := range []string{"fig3a", "fig3b", "fig5a", "fig5b",
		"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b"} {
		for _, ext := range []string{".csv", ".dat"} {
			p := filepath.Join(dir, id+ext)
			info, err := os.Stat(p)
			if err != nil {
				t.Errorf("missing %s: %v", p, err)
				continue
			}
			if info.Size() == 0 {
				t.Errorf("%s is empty", p)
			}
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-quick", "-fig", "3", "-ascii=false"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig3a.csv")); err != nil {
		t.Error("fig3a should exist")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6a.csv")); err == nil {
		t.Error("fig6a should be filtered out")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-quick", "-fig", "99"}); err == nil {
		t.Error("unknown figure id should fail")
	}
}
