// Command figures regenerates the data behind every evaluation figure of
// the paper (Figures 3, 5, 6, 7, 8) and writes each as CSV and
// gnuplot-ready .dat files, plus an ASCII preview on stdout.
//
// Usage:
//
//	figures [-out dir] [-trials n] [-seed s] [-fig id] [-quick]
//
// With -fig the output is restricted to one figure id (3, 5, 6, 7, 8 or a
// panel like 7a). -quick shrinks the sweep for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wsncover/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", "out", "output directory for .csv/.dat files")
		trials  = fs.Int("trials", 100, "simulation trials per (scheme, N) point")
		seed    = fs.Int64("seed", 2008, "base random seed")
		fig     = fs.String("fig", "", "restrict to one figure id (e.g. 3, 6, 7a)")
		quick   = fs.Bool("quick", false, "small sweep for a fast smoke run")
		ascii   = fs.Bool("ascii", true, "print ASCII previews to stdout")
		ext     = fs.Bool("ext", false, "also run the extension experiments (scalability, multi-hole)")
		workers = fs.Int("workers", 0, "parallel trial workers (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := figures.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	if *quick {
		cfg.Trials = 10
		cfg.Ns = []int{10, 55, 200, 1000}
	}

	tables, err := figures.All(cfg)
	if err != nil {
		return err
	}
	if *ext {
		extTrials := cfg.Trials / 2
		scal, err := figures.Scalability(figures.ScalabilityConfig{
			Trials: extTrials, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		tables["fig-ext-scalability"] = scal
		multi, err := figures.MultiHole(figures.MultiHoleConfig{
			Trials: extTrials, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		tables["fig-ext-multihole"] = multi
	}

	keys := make([]string, 0, len(tables))
	for k := range tables {
		if *fig != "" && !strings.HasPrefix(strings.TrimPrefix(k, "fig"), *fig) {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return fmt.Errorf("no figure matches -fig=%q", *fig)
	}
	sort.Strings(keys)

	for _, k := range keys {
		t := tables[k]
		paths, err := t.SaveAll(*outDir, k)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", strings.Join(paths, ", "))
		if *ascii {
			fmt.Println(t.ASCII(72, 16))
		}
	}
	return nil
}
