package main

import "testing"

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-grid", "4x5"},
		{"-grid", "4x5", "-order"},
		{"-grid", "5x5", "-order"},
		{"-grid", "5x5", "-walk", "0,0"},
		{"-grid", "16x16", "-walk", "8,8"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-grid", "nonsense"},
		{"-grid", "1x1"},
		{"-grid", "4x4", "-walk", "zz"},
		{"-grid", "4x4", "-walk", "9,9"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
