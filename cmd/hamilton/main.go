// Command hamilton prints and validates the directed Hamilton structure
// for a grid system: the single cycle when n*m is even, the dual-path
// construction with its special grids A, B, C, D when both are odd.
//
// Usage:
//
//	hamilton [-grid 5x5] [-order] [-walk x,y]
//
// -order lists the cycle (or shared-segment) order; -walk prints the
// backward replacement walk for a hole at the given cell.
package main

import (
	"flag"
	"fmt"
	"os"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/visual"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hamilton:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hamilton", flag.ContinueOnError)
	var (
		gridSpec = fs.String("grid", "4x5", "grid size, CxR")
		order    = fs.Bool("order", false, "print the traversal order")
		walkSpec = fs.String("walk", "", "print the replacement walk for a hole at x,y")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cols, rows int
	if _, err := fmt.Sscanf(*gridSpec, "%dx%d", &cols, &rows); err != nil {
		return fmt.Errorf("bad -grid %q", *gridSpec)
	}
	sys, err := grid.New(cols, rows, 1, geom.Pt(0, 0))
	if err != nil {
		return err
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		return err
	}
	fmt.Print(visual.Cycle(topo))

	if a, b, c, d, ok := topo.ABCD(); ok {
		fmt.Printf("A=%v B=%v C=%v D=%v\n", a, b, c, d)
	}

	if *order {
		if topo.Kind() == hamilton.KindCycle {
			fmt.Println("cycle order:", topo.CycleOrder())
		} else {
			fmt.Println("shared segment D..C:", topo.SharedOrder())
		}
	}

	if *walkSpec != "" {
		var x, y int
		if _, err := fmt.Sscanf(*walkSpec, "%d,%d", &x, &y); err != nil {
			return fmt.Errorf("bad -walk %q (want x,y)", *walkSpec)
		}
		hole := grid.C(x, y)
		if !sys.Contains(hole) {
			return fmt.Errorf("hole %v outside %dx%d grid", hole, cols, rows)
		}
		w := topo.NewWalk(hole)
		fmt.Printf("replacement walk for hole %v (L=%d):\n  %v",
			hole, topo.PathLength(hole), w.Current())
		for w.Advance(nil) {
			fmt.Printf(" <- %v", w.Current())
		}
		fmt.Println()
	}
	return nil
}
