// Command sweepd is the always-on campaign service: a single-binary
// daemon that accepts campaign specs over HTTP, runs them through the
// same deterministic engine cmd/sweep drives, and serves the resulting
// manifests from a content-addressed store keyed by spec hash — so a
// campaign anyone already ran, at any worker count, is answered from
// the store without executing a single trial.
//
// Usage:
//
//	sweepd [-addr :8080] [-store dir] [-concurrency n] [-queue n]
//	       [-fleet-slots n -worker-bin path] [-pprof]
//
// Every flag has an environment-variable default (flag beats env):
//
//	SWEEPD_ADDR         listen address           (:8080)
//	SWEEPD_STORE        store directory          (store)
//	SWEEPD_CONCURRENCY  concurrent campaigns     (1)
//	SWEEPD_QUEUE        queued-campaign bound    (32)
//	SWEEPD_FLEET_SLOTS  dispatch-fleet slots     (0 = run in-process)
//	SWEEPD_WORKER_BIN   sweep binary for fleets
//	SWEEPD_ADDR_FILE    write the bound address here (":0" discovery)
//
// The API is documented on sweepd.Daemon.Handler; see the README's
// "Running as a service" section for the curl cookbook. Logs are
// structured slog on stderr (WSNSWEEP_LOG, WSNSWEEP_LOG_FORMAT).
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// /readyz flips to 503, queued campaigns are recorded aborted in the
// ledger, and in-flight campaigns stop at the next trial boundary with
// their checkpoints flushed — resubmitting the same spec after a
// restart resumes from them. A second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"wsncover/internal/sweepd"
	"wsncover/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// envString and envInt resolve a flag default from the environment.
func envString(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", envString("SWEEPD_ADDR", ":8080"), "listen address (host:port; port 0 picks a free one)")
		storeDir    = fs.String("store", envString("SWEEPD_STORE", "store"), "content-addressed manifest store directory")
		concurrency = fs.Int("concurrency", envInt("SWEEPD_CONCURRENCY", 1), "campaigns executing at once")
		queueDepth  = fs.Int("queue", envInt("SWEEPD_QUEUE", 32), "accepted-but-not-started campaign bound")
		fleetSlots  = fs.Int("fleet-slots", envInt("SWEEPD_FLEET_SLOTS", 0), "run each campaign as a dispatch fleet of this many worker subprocesses (0/1 = in-process)")
		workerBin   = fs.String("worker-bin", envString("SWEEPD_WORKER_BIN", ""), "sweep binary fleets launch (required with -fleet-slots > 1)")
		pprofF      = fs.Bool("pprof", false, "expose net/http/pprof on the API server")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := telemetry.NewLogger(os.Stderr)

	store, err := sweepd.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	daemon, err := sweepd.New(sweepd.Options{
		Store:       store,
		Concurrency: *concurrency,
		QueueDepth:  *queueDepth,
		FleetSlots:  *fleetSlots,
		WorkerBin:   *workerBin,
		Pprof:       *pprofF,
		Logger:      logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	logger.Info("sweepd serving", "addr", bound, "store", store.Dir(),
		"concurrency", *concurrency, "fleet_slots", *fleetSlots, "pprof", *pprofF)
	// ":0" discovery for scripts and CI: write the bound address where
	// SWEEPD_ADDR_FILE points, mirroring WSNSWEEP_DASH_ADDR_FILE.
	if path := os.Getenv("SWEEPD_ADDR_FILE"); path != "" {
		if err := os.WriteFile(path, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	srv := &http.Server{Handler: daemon.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigCh:
		logger.Warn("signal received: draining (in-flight checkpoints flush, queued campaigns record aborted); second signal exits immediately",
			"signal", sig.String())
	}
	go func() {
		sig := <-sigCh
		logger.Error("second signal: exiting immediately", "signal", sig.String())
		os.Exit(130)
	}()

	daemon.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}
