// Command runlog queries the run ledger — the append-only NDJSON
// history cmd/sweep writes one record into per campaign run, completed
// or not: list's status column shows FAILED and ABORTED runs so an
// unhealthy fleet is visible from the run history
// (internal/telemetry, default <out>/ledger.ndjson).
//
// Usage:
//
//	runlog [-ledger out/ledger.ndjson | -store dir] [-json] list
//	runlog [-ledger ... | -store dir] show <ref>
//	runlog [-ledger ...] diff [-tol t] <refA> <refB>
//	runlog bench [-baseline BENCH_trial.json] [-metric ns_op]
//
// A <ref> names one record: a 1-based index into the ledger (append
// order, so 1 is the oldest), a spec-hash prefix (with or without the
// "sha256:" prefix), or a campaign name — the latest matching record
// wins for hashes and names, so "runlog show churn" is the most recent
// churn campaign.
//
// -store points at a sweepd manifest store (internal/sweepd) instead
// of a bare ledger file: list reads the store's own ledger — sweepd
// records every campaign there, so daemon history browses exactly like
// CLI history — and adds a table of the stored manifests (hash, size,
// newest record), including ones no ledger line mentions. show falls
// back to resolving <ref> as a store hash prefix when no ledger record
// matches, printing the store entry. -json switches list to a JSON
// object {"records": [...], "manifests": [...]} for scripting (show is
// always JSON; manifests appears only with -store).
//
// diff compares two records' manifests under the same shard merge
// contract cmd/manifestdiff enforces (dispatch.DiffManifests): because
// the engine is deterministic, two runs with equal spec hashes must
// produce equivalent manifests, and diff proves it — across machines,
// shard layouts, and fleet sizes. Exit status 1 means the manifests
// differ, 2 usage or read errors.
//
// bench is the wall-clock companion: it tabulates each benchmark's
// metric across the BENCH_trial.json history (newest first), the trend
// table CI prints next to the gated alloc checks.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"wsncover/internal/dispatch"
	"wsncover/internal/sweepd"
	"wsncover/internal/telemetry"
)

// errDiffs marks a successful comparison that found differences, so
// main can exit 1 (differ) rather than 2 (broken).
var errDiffs = errors.New("manifests differ")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errDiffs):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "runlog:", err)
		os.Exit(2)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("runlog", flag.ContinueOnError)
	ledgerPath := fs.String("ledger", "out/ledger.ndjson", "run-ledger NDJSON file")
	storeDir := fs.String("store", "", "sweepd manifest store directory (implies its ledger; list adds the stored manifests)")
	jsonOut := fs.Bool("json", false, "list: emit a JSON object instead of the table")
	tol := fs.Float64("tol", 1e-9, "diff: relative tolerance for mean/stddev/CI95")
	baseline := fs.String("baseline", "BENCH_trial.json", "bench: benchmark history file")
	metric := fs.String("metric", "ns_op", "bench: metric to tabulate (ns_op, bytes_op, allocs_op)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: runlog [flags] list | show <ref> | diff <refA> <refB> | bench")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -store implies the store's own ledger; an explicit -ledger beats it.
	if *storeDir != "" {
		ledgerSet := false
		fs.Visit(func(f *flag.Flag) { ledgerSet = ledgerSet || f.Name == "ledger" })
		if !ledgerSet {
			*ledgerPath = filepath.Join(*storeDir, "ledger.ndjson")
		}
	}
	sub := fs.Arg(0)
	rest := fs.Args()
	if len(rest) > 0 {
		rest = rest[1:]
	}
	switch sub {
	case "", "list":
		return runList(w, *ledgerPath, *storeDir, *jsonOut)
	case "show":
		if len(rest) != 1 {
			return fmt.Errorf("show takes one record ref")
		}
		return runShow(w, *ledgerPath, *storeDir, rest[0])
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff takes two record refs")
		}
		return runDiff(w, *ledgerPath, rest[0], rest[1], *tol)
	case "bench":
		return runBench(w, *baseline, *metric)
	}
	return fmt.Errorf("unknown subcommand %q (want list, show, diff, or bench)", sub)
}

// resolve finds the record a ref names: a 1-based ledger index, a
// spec-hash prefix, or a campaign name (latest match wins for the
// latter two). The returned index is 0-based.
func resolve(recs []telemetry.Record, ref string) (int, error) {
	if n, err := strconv.Atoi(ref); err == nil {
		if n < 1 || n > len(recs) {
			return 0, fmt.Errorf("record %d out of range (ledger has %d)", n, len(recs))
		}
		return n - 1, nil
	}
	hashRef := ref
	if !strings.HasPrefix(hashRef, "sha256:") {
		hashRef = "sha256:" + hashRef
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if strings.HasPrefix(recs[i].SpecHash, hashRef) {
			return i, nil
		}
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Name == ref {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no record matches %q (not an index, spec-hash prefix, or campaign name)", ref)
}

// shortHash abbreviates "sha256:<64 hex>" for the list table.
func shortHash(h string) string {
	h = strings.TrimPrefix(h, "sha256:")
	if len(h) > 12 {
		h = h[:12]
	}
	return h
}

// readLedgerLenient loads the ledger, treating a missing file as empty
// in store mode — a store freshly populated by hand has manifests but
// no ledger yet, and that is browsable history, not an error.
func readLedgerLenient(path string, lenient bool) ([]telemetry.Record, error) {
	recs, err := telemetry.ReadLedger(path)
	if err != nil && lenient && errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return recs, err
}

func runList(w io.Writer, path, storeDir string, jsonOut bool) error {
	recs, err := readLedgerLenient(path, storeDir != "")
	if err != nil {
		return err
	}
	var entries []sweepd.Entry
	if storeDir != "" {
		store, err := sweepd.OpenStore(storeDir)
		if err != nil {
			return err
		}
		if entries, err = store.List(); err != nil {
			return err
		}
	}
	if jsonOut {
		out := struct {
			Records   []telemetry.Record `json:"records"`
			Manifests []sweepd.Entry     `json:"manifests,omitempty"`
		}{Records: recs, Manifests: entries}
		if out.Records == nil {
			out.Records = []telemetry.Record{}
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", b)
		return nil
	}
	fmt.Fprintf(w, "%-4s %-20s %-16s %-9s %-9s %6s %6s %9s %10s  %s\n",
		"#", "time", "name", "mode", "status", "jobs", "pts", "wall_s", "trials/s", "spec")
	for i, r := range recs {
		fmt.Fprintf(w, "%-4d %-20s %-16s %-9s %-9s %6d %6d %9.2f %10.1f  %s\n",
			i+1, r.Time.Format("2006-01-02 15:04:05"), r.Name, r.Mode, listStatus(r),
			r.Jobs, r.Points, r.WallS, r.TrialsPerS, shortHash(r.SpecHash))
	}
	if storeDir != "" {
		fmt.Fprintf(w, "\nstore %s: %d manifest(s)\n", storeDir, len(entries))
		fmt.Fprintf(w, "%-14s %10s %-16s %-9s  %s\n", "spec", "bytes", "name", "status", "path")
		for _, e := range entries {
			name, status := "(unledgered)", "-"
			if e.Record != nil {
				name, status = e.Record.Name, listStatus(*e.Record)
			}
			fmt.Fprintf(w, "%-14s %10d %-16s %-9s  %s\n",
				shortHash(e.SpecHash), e.Bytes, name, status, e.Path)
		}
	}
	return nil
}

// listStatus renders a record's outcome; records written before the
// status field existed are completed (only successful runs were
// recorded then). Unhealthy outcomes render uppercase so they jump out
// of a long history.
func listStatus(r telemetry.Record) string {
	switch r.Status {
	case "", telemetry.StatusCompleted:
		return telemetry.StatusCompleted
	case telemetry.StatusFailed, telemetry.StatusAborted:
		return strings.ToUpper(r.Status)
	}
	return r.Status
}

func runShow(w io.Writer, path, storeDir, ref string) error {
	recs, err := readLedgerLenient(path, storeDir != "")
	if err != nil {
		return err
	}
	i, err := resolve(recs, ref)
	if err != nil {
		// In store mode a ref no ledger record matches may still name a
		// stored manifest (e.g. installed by hand); show its entry.
		if storeDir == "" {
			return err
		}
		store, serr := sweepd.OpenStore(storeDir)
		if serr != nil {
			return serr
		}
		hash, manifest, serr := store.Resolve(ref)
		if serr != nil {
			return err // the original, more helpful resolution error
		}
		info, serr := os.Stat(manifest)
		if serr != nil {
			return serr
		}
		b, serr := json.MarshalIndent(sweepd.Entry{SpecHash: hash, Path: manifest, Bytes: info.Size()}, "", "  ")
		if serr != nil {
			return serr
		}
		fmt.Fprintf(w, "%s\n", b)
		return nil
	}
	b, err := json.MarshalIndent(recs[i], "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", b)
	return nil
}

func runDiff(w io.Writer, path, refA, refB string, tol float64) error {
	recs, err := telemetry.ReadLedger(path)
	if err != nil {
		return err
	}
	ia, err := resolve(recs, refA)
	if err != nil {
		return err
	}
	ib, err := resolve(recs, refB)
	if err != nil {
		return err
	}
	a, b := recs[ia], recs[ib]
	if a.SpecHash != b.SpecHash {
		fmt.Fprintf(w, "spec hashes differ (%s vs %s); comparing anyway\n",
			shortHash(a.SpecHash), shortHash(b.SpecHash))
	}
	diffs, err := dispatch.DiffManifests(a.Manifest, b.Manifest, tol)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(w, d)
		}
		fmt.Fprintf(w, "%d difference(s) between %s and %s\n", len(diffs), a.Manifest, b.Manifest)
		return errDiffs
	}
	fmt.Fprintf(w, "%s and %s are equivalent (modulo estimated medians and execution metadata)\n",
		a.Manifest, b.Manifest)
	return nil
}

// benchHistory mirrors the slice of BENCH_trial.json runlog needs.
type benchHistory struct {
	History []struct {
		PR         int                           `json:"pr"`
		Date       string                        `json:"date"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"history"`
}

// runBench prints one row per benchmark, one column per history entry
// (newest first), for the chosen metric — the per-PR trend table.
func runBench(w io.Writer, path, metric string) error {
	switch metric {
	case "ns_op", "bytes_op", "allocs_op":
	default:
		return fmt.Errorf("bad -metric %q (want ns_op, bytes_op, or allocs_op)", metric)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var hist benchHistory
	if err := json.Unmarshal(data, &hist); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(hist.History) == 0 {
		return fmt.Errorf("%s has no history entries", path)
	}
	names := map[string]bool{}
	for _, e := range hist.History {
		for n := range e.Benchmarks {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "%-44s", metric)
	for _, e := range hist.History {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("pr%d", e.PR))
	}
	fmt.Fprintln(w)
	for _, n := range sorted {
		fmt.Fprintf(w, "%-44s", n)
		for _, e := range hist.History {
			if v, ok := e.Benchmarks[n][metric]; ok {
				fmt.Fprintf(w, " %12.0f", v)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
