// Command runlog queries the run ledger — the append-only NDJSON
// history cmd/sweep writes one record into per campaign run, completed
// or not: list's status column shows FAILED and ABORTED runs so an
// unhealthy fleet is visible from the run history
// (internal/telemetry, default <out>/ledger.ndjson).
//
// Usage:
//
//	runlog [-ledger out/ledger.ndjson] list
//	runlog [-ledger ...] show <ref>
//	runlog [-ledger ...] diff [-tol t] <refA> <refB>
//	runlog bench [-baseline BENCH_trial.json] [-metric ns_op]
//
// A <ref> names one record: a 1-based index into the ledger (append
// order, so 1 is the oldest), a spec-hash prefix (with or without the
// "sha256:" prefix), or a campaign name — the latest matching record
// wins for hashes and names, so "runlog show churn" is the most recent
// churn campaign.
//
// diff compares two records' manifests under the same shard merge
// contract cmd/manifestdiff enforces (dispatch.DiffManifests): because
// the engine is deterministic, two runs with equal spec hashes must
// produce equivalent manifests, and diff proves it — across machines,
// shard layouts, and fleet sizes. Exit status 1 means the manifests
// differ, 2 usage or read errors.
//
// bench is the wall-clock companion: it tabulates each benchmark's
// metric across the BENCH_trial.json history (newest first), the trend
// table CI prints next to the gated alloc checks.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"wsncover/internal/dispatch"
	"wsncover/internal/telemetry"
)

// errDiffs marks a successful comparison that found differences, so
// main can exit 1 (differ) rather than 2 (broken).
var errDiffs = errors.New("manifests differ")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errDiffs):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "runlog:", err)
		os.Exit(2)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("runlog", flag.ContinueOnError)
	ledgerPath := fs.String("ledger", "out/ledger.ndjson", "run-ledger NDJSON file")
	tol := fs.Float64("tol", 1e-9, "diff: relative tolerance for mean/stddev/CI95")
	baseline := fs.String("baseline", "BENCH_trial.json", "bench: benchmark history file")
	metric := fs.String("metric", "ns_op", "bench: metric to tabulate (ns_op, bytes_op, allocs_op)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: runlog [flags] list | show <ref> | diff <refA> <refB> | bench")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	sub := fs.Arg(0)
	rest := fs.Args()
	if len(rest) > 0 {
		rest = rest[1:]
	}
	switch sub {
	case "", "list":
		return runList(w, *ledgerPath)
	case "show":
		if len(rest) != 1 {
			return fmt.Errorf("show takes one record ref")
		}
		return runShow(w, *ledgerPath, rest[0])
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("diff takes two record refs")
		}
		return runDiff(w, *ledgerPath, rest[0], rest[1], *tol)
	case "bench":
		return runBench(w, *baseline, *metric)
	}
	return fmt.Errorf("unknown subcommand %q (want list, show, diff, or bench)", sub)
}

// resolve finds the record a ref names: a 1-based ledger index, a
// spec-hash prefix, or a campaign name (latest match wins for the
// latter two). The returned index is 0-based.
func resolve(recs []telemetry.Record, ref string) (int, error) {
	if n, err := strconv.Atoi(ref); err == nil {
		if n < 1 || n > len(recs) {
			return 0, fmt.Errorf("record %d out of range (ledger has %d)", n, len(recs))
		}
		return n - 1, nil
	}
	hashRef := ref
	if !strings.HasPrefix(hashRef, "sha256:") {
		hashRef = "sha256:" + hashRef
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if strings.HasPrefix(recs[i].SpecHash, hashRef) {
			return i, nil
		}
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Name == ref {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no record matches %q (not an index, spec-hash prefix, or campaign name)", ref)
}

// shortHash abbreviates "sha256:<64 hex>" for the list table.
func shortHash(h string) string {
	h = strings.TrimPrefix(h, "sha256:")
	if len(h) > 12 {
		h = h[:12]
	}
	return h
}

func runList(w io.Writer, path string) error {
	recs, err := telemetry.ReadLedger(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-4s %-20s %-16s %-9s %-9s %6s %6s %9s %10s  %s\n",
		"#", "time", "name", "mode", "status", "jobs", "pts", "wall_s", "trials/s", "spec")
	for i, r := range recs {
		fmt.Fprintf(w, "%-4d %-20s %-16s %-9s %-9s %6d %6d %9.2f %10.1f  %s\n",
			i+1, r.Time.Format("2006-01-02 15:04:05"), r.Name, r.Mode, listStatus(r),
			r.Jobs, r.Points, r.WallS, r.TrialsPerS, shortHash(r.SpecHash))
	}
	return nil
}

// listStatus renders a record's outcome; records written before the
// status field existed are completed (only successful runs were
// recorded then). Unhealthy outcomes render uppercase so they jump out
// of a long history.
func listStatus(r telemetry.Record) string {
	switch r.Status {
	case "", telemetry.StatusCompleted:
		return telemetry.StatusCompleted
	case telemetry.StatusFailed, telemetry.StatusAborted:
		return strings.ToUpper(r.Status)
	}
	return r.Status
}

func runShow(w io.Writer, path, ref string) error {
	recs, err := telemetry.ReadLedger(path)
	if err != nil {
		return err
	}
	i, err := resolve(recs, ref)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(recs[i], "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", b)
	return nil
}

func runDiff(w io.Writer, path, refA, refB string, tol float64) error {
	recs, err := telemetry.ReadLedger(path)
	if err != nil {
		return err
	}
	ia, err := resolve(recs, refA)
	if err != nil {
		return err
	}
	ib, err := resolve(recs, refB)
	if err != nil {
		return err
	}
	a, b := recs[ia], recs[ib]
	if a.SpecHash != b.SpecHash {
		fmt.Fprintf(w, "spec hashes differ (%s vs %s); comparing anyway\n",
			shortHash(a.SpecHash), shortHash(b.SpecHash))
	}
	diffs, err := dispatch.DiffManifests(a.Manifest, b.Manifest, tol)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(w, d)
		}
		fmt.Fprintf(w, "%d difference(s) between %s and %s\n", len(diffs), a.Manifest, b.Manifest)
		return errDiffs
	}
	fmt.Fprintf(w, "%s and %s are equivalent (modulo estimated medians and execution metadata)\n",
		a.Manifest, b.Manifest)
	return nil
}

// benchHistory mirrors the slice of BENCH_trial.json runlog needs.
type benchHistory struct {
	History []struct {
		PR         int                           `json:"pr"`
		Date       string                        `json:"date"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"history"`
}

// runBench prints one row per benchmark, one column per history entry
// (newest first), for the chosen metric — the per-PR trend table.
func runBench(w io.Writer, path, metric string) error {
	switch metric {
	case "ns_op", "bytes_op", "allocs_op":
	default:
		return fmt.Errorf("bad -metric %q (want ns_op, bytes_op, or allocs_op)", metric)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var hist benchHistory
	if err := json.Unmarshal(data, &hist); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(hist.History) == 0 {
		return fmt.Errorf("%s has no history entries", path)
	}
	names := map[string]bool{}
	for _, e := range hist.History {
		for n := range e.Benchmarks {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "%-44s", metric)
	for _, e := range hist.History {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("pr%d", e.PR))
	}
	fmt.Fprintln(w)
	for _, n := range sorted {
		fmt.Fprintf(w, "%-44s", n)
		for _, e := range hist.History {
			if v, ok := e.Benchmarks[n][metric]; ok {
				fmt.Fprintf(w, " %12.0f", v)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
