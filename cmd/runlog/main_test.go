package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/stats"
	"wsncover/internal/sweepd"
	"wsncover/internal/telemetry"
)

// writeManifest persists a one-point manifest and returns its path.
func writeManifest(t *testing.T, dir, name string, mean float64) string {
	t.Helper()
	spec := sim.CampaignSpec{
		Schemes: []sim.SchemeKind{sim.SR}, Grids: []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares: []int{8}, Replicates: 4, BaseSeed: 1,
	}.Normalized()
	pts := []experiment.Point{{
		Group: "SR 8x8", X: 8,
		Metrics: map[string]stats.Description{
			"moves": {N: 4, Mean: mean, Min: 1, Max: 9, Median: mean},
		},
	}}
	m, err := experiment.NewManifest(name, spec, 4, 0, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, name+".json")
}

// buildLedger writes three records: two equivalent runs of one campaign
// (same spec hash) and one genuinely different run.
func buildLedger(t *testing.T) (ledger string, hash string) {
	t.Helper()
	dir := t.TempDir()
	ledger = filepath.Join(dir, "ledger.ndjson")
	a := writeManifest(t, dir, "alpha", 5)
	b := writeManifest(t, dir, "beta", 5)
	c := writeManifest(t, dir, "gamma", 7)
	hash = "sha256:aabbccdd00112233"
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i, r := range []telemetry.Record{
		{Name: "alpha", Mode: "run", SpecHash: hash, Manifest: a, Jobs: 4, Points: 1, WallS: 1.5},
		{Name: "beta", Mode: "dispatch", Status: telemetry.StatusCompleted, SpecHash: hash, Manifest: b, Jobs: 4, Points: 1, Shards: 2, WallS: 0.9},
		{Name: "gamma", Mode: "run", SpecHash: "sha256:ffee00", Manifest: c, Jobs: 4, Points: 1, WallS: 1.1},
		{Name: "delta", Mode: "dispatch", Status: telemetry.StatusFailed, SpecHash: "sha256:ddcc11", Jobs: 2, WallS: 0.4},
		{Name: "epsilon", Mode: "run", Status: telemetry.StatusAborted, SpecHash: "sha256:ee4411", Jobs: 1, WallS: 0.2},
	} {
		r.Time = base.Add(time.Duration(i) * time.Minute)
		if err := telemetry.AppendRecord(ledger, r); err != nil {
			t.Fatal(err)
		}
	}
	return ledger, hash
}

func TestRunlogList(t *testing.T) {
	ledger, _ := buildLedger(t)
	var out strings.Builder
	if err := run([]string{"-ledger", ledger, "list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Unhealthy runs stand out (uppercase); pre-status records and
	// explicit completions both read "completed".
	for _, want := range []string{"alpha", "beta", "gamma", "dispatch", "aabbccdd0011",
		"status", "completed", "FAILED", "ABORTED"} {
		if !strings.Contains(s, want) {
			t.Errorf("list output missing %q:\n%s", want, s)
		}
	}
	// The bare command defaults to list.
	var def strings.Builder
	if err := run([]string{"-ledger", ledger}, &def); err != nil {
		t.Fatal(err)
	}
	if def.String() != s {
		t.Error("default subcommand should be list")
	}
}

func TestRunlogShowResolvesRefs(t *testing.T) {
	ledger, hash := buildLedger(t)
	for ref, wantName := range map[string]string{
		"1":      "alpha", // 1-based index
		"gamma":  "gamma", // campaign name
		"beta":   "beta",
		"aabbcc": "beta", // hash prefix: latest match wins
		hash:     "beta", // full hash, sha256: prefix included
	} {
		var out strings.Builder
		if err := run([]string{"-ledger", ledger, "show", ref}, &out); err != nil {
			t.Fatalf("show %q: %v", ref, err)
		}
		if !strings.Contains(out.String(), `"name": "`+wantName+`"`) {
			t.Errorf("show %q resolved to:\n%s\nwant %s", ref, out.String(), wantName)
		}
	}
	if err := run([]string{"-ledger", ledger, "show", "nonesuch"}, &strings.Builder{}); err == nil {
		t.Error("unresolvable ref should error")
	}
	if err := run([]string{"-ledger", ledger, "show", "99"}, &strings.Builder{}); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestRunlogDiff(t *testing.T) {
	ledger, _ := buildLedger(t)
	// alpha vs beta: same statistics, different manifest names — the
	// merge contract reports exactly the name difference.
	var out strings.Builder
	err := run([]string{"-ledger", ledger, "diff", "alpha", "beta"}, &out)
	if !errors.Is(err, errDiffs) {
		t.Fatalf("diff alpha beta = %v, want errDiffs (names differ)", err)
	}
	if !strings.Contains(out.String(), "name") {
		t.Errorf("diff output should mention the name difference:\n%s", out.String())
	}
	// alpha vs gamma differ in results too, and the spec hashes differ.
	out.Reset()
	err = run([]string{"-ledger", ledger, "diff", "1", "gamma"}, &out)
	if !errors.Is(err, errDiffs) {
		t.Fatalf("diff 1 gamma = %v, want errDiffs", err)
	}
	if !strings.Contains(out.String(), "spec hashes differ") {
		t.Errorf("diff should warn about differing spec hashes:\n%s", out.String())
	}
	// A record diffed against itself is equivalent.
	out.Reset()
	if err := run([]string{"-ledger", ledger, "diff", "1", "1"}, &out); err != nil {
		t.Fatalf("diff 1 1 = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "equivalent") {
		t.Errorf("self-diff output:\n%s", out.String())
	}
}

func TestRunlogBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_trial.json")
	hist := `{"history": [
		{"pr": 5, "date": "2026-08-01", "benchmarks": {
			"ReplicateSteadyState/pooled-64x64": {"ns_op": 500000, "bytes_op": 41000, "allocs_op": 145}}},
		{"pr": 4, "date": "2026-07-29", "benchmarks": {
			"ReplicateSteadyState/pooled-64x64": {"ns_op": 544336, "bytes_op": 41370, "allocs_op": 145},
			"TrialLarge/64x64": {"ns_op": 1355868}}}
	]}`
	if err := os.WriteFile(path, []byte(hist), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"bench", "-baseline", path}, &out); err == nil {
		t.Log("flags after subcommand are not parsed; expected usage is flags first")
	}
	out.Reset()
	if err := run([]string{"-baseline", path, "bench"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"pr5", "pr4", "500000", "544336", "ReplicateSteadyState/pooled-64x64"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench table missing %q:\n%s", want, s)
		}
	}
	// TrialLarge has no pr5 entry: its row carries a dash.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "TrialLarge/64x64") && !strings.Contains(line, "-") {
			t.Errorf("missing-entry dash absent: %q", line)
		}
	}
	out.Reset()
	if err := run([]string{"-baseline", path, "-metric", "watts", "bench"}, &out); err == nil {
		t.Error("bad metric should error")
	}
}

// buildStore populates a sweepd store with one ledgered manifest and
// one installed by hand (no ledger line).
func buildStore(t *testing.T) (dir string, ledgered, bare string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "store")
	store, err := sweepd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := writeManifest(t, t.TempDir(), "daemon-run", 5)
	ledgered = "sha256:" + strings.Repeat("aa", 32)
	bare = "sha256:" + strings.Repeat("bb", 32)
	for _, h := range []string{ledgered, bare} {
		if _, err := store.Install(h, src); err != nil {
			t.Fatal(err)
		}
	}
	err = telemetry.AppendRecord(store.LedgerPath(), telemetry.Record{
		Name: "daemon-run", Mode: "sweepd", Status: telemetry.StatusCompleted,
		SpecHash: ledgered, Jobs: 4, Points: 1, WallS: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dir, ledgered, bare
}

func TestRunlogStoreMode(t *testing.T) {
	dir, _, bare := buildStore(t)

	// list reads the store's own ledger and appends the manifest table,
	// flagging the manifest no ledger line mentions.
	var out strings.Builder
	if err := run([]string{"-store", dir, "list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"daemon-run", "sweepd", "2 manifest(s)", "(unledgered)"} {
		if !strings.Contains(s, want) {
			t.Errorf("store list missing %q:\n%s", want, s)
		}
	}

	// show resolves ledger refs as usual, and falls back to the store
	// for a hash only the manifest directory knows.
	out.Reset()
	if err := run([]string{"-store", dir, "show", "daemon-run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"mode": "sweepd"`) {
		t.Errorf("store show = %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-store", dir, "show", "bbbb"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), bare) {
		t.Errorf("store-fallback show = %s, want entry for %s", out.String(), bare)
	}
	if err := run([]string{"-store", dir, "show", "nonesuch"}, &strings.Builder{}); err == nil {
		t.Error("unresolvable ref should still error in store mode")
	}
}

func TestRunlogListJSON(t *testing.T) {
	dir, ledgered, bare := buildStore(t)
	var out strings.Builder
	if err := run([]string{"-store", dir, "-json", "list"}, &out); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Records   []telemetry.Record `json:"records"`
		Manifests []struct {
			SpecHash string `json:"spec_hash"`
			Bytes    int64  `json:"bytes"`
		} `json:"manifests"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("list -json is not valid JSON: %v\n%s", err, out.String())
	}
	if len(got.Records) != 1 || got.Records[0].Name != "daemon-run" {
		t.Errorf("records = %+v", got.Records)
	}
	if len(got.Manifests) != 2 || got.Manifests[0].SpecHash != ledgered ||
		got.Manifests[1].SpecHash != bare || got.Manifests[0].Bytes == 0 {
		t.Errorf("manifests = %+v", got.Manifests)
	}

	// A plain ledger (no -store) still lists as JSON, records only.
	ledger, _ := buildLedger(t)
	out.Reset()
	if err := run([]string{"-ledger", ledger, "-json", "list"}, &out); err != nil {
		t.Fatal(err)
	}
	var plain struct {
		Records   []telemetry.Record `json:"records"`
		Manifests []any              `json:"manifests"`
	}
	if err := json.Unmarshal([]byte(out.String()), &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != 5 || plain.Manifests != nil {
		t.Errorf("plain -json list: %d records, manifests %v", len(plain.Records), plain.Manifests)
	}
}
